
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_base_permutation.cc" "tests/CMakeFiles/pddl_tests.dir/test_base_permutation.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_base_permutation.cc.o.d"
  "/root/repo/tests/test_bibd.cc" "tests/CMakeFiles/pddl_tests.dir/test_bibd.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_bibd.cc.o.d"
  "/root/repo/tests/test_binomial.cc" "tests/CMakeFiles/pddl_tests.dir/test_binomial.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_binomial.cc.o.d"
  "/root/repo/tests/test_closed_loop.cc" "tests/CMakeFiles/pddl_tests.dir/test_closed_loop.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_closed_loop.cc.o.d"
  "/root/repo/tests/test_controller.cc" "tests/CMakeFiles/pddl_tests.dir/test_controller.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_controller.cc.o.d"
  "/root/repo/tests/test_datum.cc" "tests/CMakeFiles/pddl_tests.dir/test_datum.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_datum.cc.o.d"
  "/root/repo/tests/test_disk.cc" "tests/CMakeFiles/pddl_tests.dir/test_disk.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_disk.cc.o.d"
  "/root/repo/tests/test_event_queue.cc" "tests/CMakeFiles/pddl_tests.dir/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_event_queue.cc.o.d"
  "/root/repo/tests/test_geometry.cc" "tests/CMakeFiles/pddl_tests.dir/test_geometry.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_geometry.cc.o.d"
  "/root/repo/tests/test_gf2m.cc" "tests/CMakeFiles/pddl_tests.dir/test_gf2m.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_gf2m.cc.o.d"
  "/root/repo/tests/test_integration.cc" "tests/CMakeFiles/pddl_tests.dir/test_integration.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_integration.cc.o.d"
  "/root/repo/tests/test_layout_properties.cc" "tests/CMakeFiles/pddl_tests.dir/test_layout_properties.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_layout_properties.cc.o.d"
  "/root/repo/tests/test_mapper_properties.cc" "tests/CMakeFiles/pddl_tests.dir/test_mapper_properties.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_mapper_properties.cc.o.d"
  "/root/repo/tests/test_modmath.cc" "tests/CMakeFiles/pddl_tests.dir/test_modmath.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_modmath.cc.o.d"
  "/root/repo/tests/test_multi_spare.cc" "tests/CMakeFiles/pddl_tests.dir/test_multi_spare.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_multi_spare.cc.o.d"
  "/root/repo/tests/test_open_loop.cc" "tests/CMakeFiles/pddl_tests.dir/test_open_loop.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_open_loop.cc.o.d"
  "/root/repo/tests/test_parity_decluster.cc" "tests/CMakeFiles/pddl_tests.dir/test_parity_decluster.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_parity_decluster.cc.o.d"
  "/root/repo/tests/test_pddl_layout.cc" "tests/CMakeFiles/pddl_tests.dir/test_pddl_layout.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_pddl_layout.cc.o.d"
  "/root/repo/tests/test_prime.cc" "tests/CMakeFiles/pddl_tests.dir/test_prime.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_prime.cc.o.d"
  "/root/repo/tests/test_pseudo_random.cc" "tests/CMakeFiles/pddl_tests.dir/test_pseudo_random.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_pseudo_random.cc.o.d"
  "/root/repo/tests/test_raid5.cc" "tests/CMakeFiles/pddl_tests.dir/test_raid5.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_raid5.cc.o.d"
  "/root/repo/tests/test_reconstruction.cc" "tests/CMakeFiles/pddl_tests.dir/test_reconstruction.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_reconstruction.cc.o.d"
  "/root/repo/tests/test_request_mapper.cc" "tests/CMakeFiles/pddl_tests.dir/test_request_mapper.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_request_mapper.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/pddl_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_search.cc" "tests/CMakeFiles/pddl_tests.dir/test_search.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_search.cc.o.d"
  "/root/repo/tests/test_seek_model.cc" "tests/CMakeFiles/pddl_tests.dir/test_seek_model.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_seek_model.cc.o.d"
  "/root/repo/tests/test_welford.cc" "tests/CMakeFiles/pddl_tests.dir/test_welford.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_welford.cc.o.d"
  "/root/repo/tests/test_working_set.cc" "tests/CMakeFiles/pddl_tests.dir/test_working_set.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_working_set.cc.o.d"
  "/root/repo/tests/test_wrapped_layout.cc" "tests/CMakeFiles/pddl_tests.dir/test_wrapped_layout.cc.o" "gcc" "tests/CMakeFiles/pddl_tests.dir/test_wrapped_layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pddl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/pddl_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/array/CMakeFiles/pddl_array.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pddl_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pddl_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/pddl_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pddl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pddl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
