file(REMOVE_RECURSE
  "CMakeFiles/storage_server.dir/storage_server.cpp.o"
  "CMakeFiles/storage_server.dir/storage_server.cpp.o.d"
  "storage_server"
  "storage_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
