/**
 * @file
 * Quickstart: build the paper's seven-disk storage server (Figure 2)
 * and walk through the PDDL mapping.
 *
 * Usage: quickstart
 */

#include <cstdio>
#include <string>
#include <vector>

#include "core/pddl_layout.hh"
#include "layout/properties.hh"

using namespace pddl;

namespace {

/** Render the physical array as the right-hand grid of Figure 2. */
void
printPhysicalArray(const PddlLayout &layout)
{
    const int n = layout.numDisks();
    const int64_t rows = layout.unitsPerDiskPerPeriod();
    std::vector<std::vector<std::string>> grid(
        rows, std::vector<std::string>(n, "S")); // default = spare
    const char *letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
    for (int64_t s = 0; s < layout.stripesPerPeriod(); ++s) {
        char letter = letters[s % 26];
        for (int pos = 0; pos < layout.stripeWidth(); ++pos) {
            PhysAddr a = layout.map({s, pos});
            if (pos < layout.dataUnitsPerStripe()) {
                grid[a.unit][a.disk] =
                    std::string(1, letter) + std::to_string(pos);
            } else {
                grid[a.unit][a.disk] = std::string("P") + letter;
            }
        }
    }
    std::printf("      ");
    for (int d = 0; d < n; ++d)
        std::printf("disk%d ", d);
    std::printf("\n");
    for (int64_t r = 0; r < rows; ++r) {
        std::printf("row %lld ", static_cast<long long>(r));
        for (int d = 0; d < n; ++d)
            std::printf("%5s ", grid[r][d].c_str());
        std::printf("\n");
    }
}

} // namespace

int
main()
{
    // The paper's example: 7 disks, 2 stripes of width 3, one
    // distributed spare. Bose's construction yields the base
    // permutation (0 1 2 4 3 6 5).
    PddlLayout layout = PddlLayout::make(7, 3);

    std::printf("PDDL seven-disk storage server (paper Figure 2)\n\n");
    std::printf("base permutation: ");
    for (int v : layout.group().perms[0])
        std::printf("%d ", v);
    std::printf("\nsatisfactory: %s\n\n",
                isSatisfactory(layout.group()) ? "yes" : "no");

    printPhysicalArray(layout);

    // The mapping function from section 2 of the paper.
    std::printf("\nvirtual2physical examples:\n");
    std::printf("  A1 (virtual disk 2, offset 0) -> physical disk "
                "%d\n",
                layout.virtual2physical(2, 0));
    std::printf("  PA (virtual disk 3, offset 0) -> physical disk "
                "%d\n",
                layout.virtual2physical(3, 0));
    std::printf("  D1 (virtual disk 5, offset 1) -> physical disk "
                "%d\n",
                layout.virtual2physical(5, 1));

    // Space accounting (section 2: 1/7 spare, 2/7 parity, 4/7 data).
    auto spare = spareUnitsPerDisk(layout);
    auto parity = checkUnitsPerDisk(layout);
    std::printf("\nper-disk space over one pattern (7 rows): %lld "
                "spare, %lld parity, %lld data\n",
                static_cast<long long>(spare[0]),
                static_cast<long long>(parity[0]),
                static_cast<long long>(7 - spare[0] - parity[0]));

    // Reconstruction balance (goal #3) when disk 0 fails.
    ReconstructionTally tally = reconstructionWorkload(layout, 0);
    std::printf("\ndisk 0 fails: per-disk reconstruction reads:");
    for (int d = 0; d < 7; ++d)
        std::printf(" %lld", static_cast<long long>(tally.reads[d]));
    std::printf("\n              per-disk spare writes:       ");
    for (int d = 0; d < 7; ++d)
        std::printf(" %lld", static_cast<long long>(tally.writes[d]));
    std::printf("\n");
    return 0;
}
