/**
 * @file
 * Storage-server scenario: the paper's 13-disk array serving a
 * closed-loop client population through a whole failure lifecycle --
 * healthy operation, a disk crash (reconstruction mode), and
 * operation after the lost contents have been rebuilt into the
 * distributed spare space.
 *
 * Usage: storage_server [clients] [access_kb]
 */

#include <cstdio>
#include <cstdlib>

#include "core/pddl_layout.hh"
#include "layout/raid5.hh"
#include "workload/closed_loop.hh"

using namespace pddl;

namespace {

SimResult
measure(const Layout &layout, ArrayMode mode, int clients, int units,
        AccessType type)
{
    SimConfig config;
    config.clients = clients;
    config.access_units = units;
    config.type = type;
    config.mode = mode;
    config.failed_disk = 0;
    config.relative_tolerance = 0.05;
    config.min_samples = 300;
    config.max_samples = 6000;
    config.warmup = 150;
    return runClosedLoop(layout, device::hp2247(), config);
}

void
report(const char *phase, const SimResult &reads,
       const SimResult &writes)
{
    std::printf("%-28s reads: %6.1f ms @ %5.0f/s    writes: %6.1f ms "
                "@ %5.0f/s\n",
                phase, reads.mean_response_ms, reads.throughput_per_s,
                writes.mean_response_ms, writes.throughput_per_s);
}

} // namespace

int
main(int argc, char **argv)
{
    const int clients = argc > 1 ? std::atoi(argv[1]) : 10;
    const int access_kb = argc > 2 ? std::atoi(argv[2]) : 48;
    const int units = access_kb / 8;
    if (clients < 1 || units < 1) {
        std::fprintf(stderr,
                     "usage: %s [clients >= 1] [access_kb multiple "
                     "of 8]\n",
                     argv[0]);
        return 1;
    }

    PddlLayout pddl = PddlLayout::make(13, 4);
    Raid5Layout raid5(13);

    std::printf("Storage server lifecycle: 13 HP 2247 disks, %d "
                "clients, %d KB accesses\n\n",
                clients, access_kb);

    std::printf("== PDDL (3 stripes of width 4 + distributed spare) "
                "==\n");
    report("healthy",
           measure(pddl, ArrayMode::FaultFree, clients, units,
                   AccessType::Read),
           measure(pddl, ArrayMode::FaultFree, clients, units,
                   AccessType::Write));
    report("disk 0 failed (rebuilding)",
           measure(pddl, ArrayMode::Degraded, clients, units,
                   AccessType::Read),
           measure(pddl, ArrayMode::Degraded, clients, units,
                   AccessType::Write));
    report("rebuilt into spare space",
           measure(pddl, ArrayMode::PostReconstruction, clients,
                   units, AccessType::Read),
           measure(pddl, ArrayMode::PostReconstruction, clients,
                   units, AccessType::Write));

    std::printf("\n== RAID-5 baseline (no declustering, no spare) "
                "==\n");
    report("healthy",
           measure(raid5, ArrayMode::FaultFree, clients, units,
                   AccessType::Read),
           measure(raid5, ArrayMode::FaultFree, clients, units,
                   AccessType::Write));
    report("disk 0 failed (forever)",
           measure(raid5, ArrayMode::Degraded, clients, units,
                   AccessType::Read),
           measure(raid5, ArrayMode::Degraded, clients, units,
                   AccessType::Write));

    std::printf("\nDeclustering spreads the failure's extra load "
                "over all survivors, and PDDL's\ndistributed spare "
                "returns the array to near-healthy response times "
                "after rebuild.\n");
    return 0;
}
