/**
 * @file
 * Layout explorer: build any of the library's layouts for an
 * arbitrary configuration and report the paper's goals #1-#8
 * checklist, space overheads, reconstruction tallies and read
 * parallelism.
 *
 * Usage: layout_explorer <kind> <disks> <width>
 *   kind: pddl | wrapped | prime | datum | pd | raid5 | pseudo
 *
 * Examples:
 *   layout_explorer pddl 13 4     # the paper's evaluated array
 *   layout_explorer pddl 16 5     # GF(2^4), XOR development
 *   layout_explorer pddl 10 3     # needs a pair of permutations
 *   layout_explorer datum 9 4
 *   layout_explorer wrapped 30 7  # section 5's wrapping
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "core/pddl_layout.hh"
#include "core/wrapped_layout.hh"
#include "layout/datum.hh"
#include "layout/parity_decluster.hh"
#include "layout/prime.hh"
#include "layout/properties.hh"
#include "layout/pseudo_random.hh"
#include "layout/raid5.hh"

using namespace pddl;

namespace {

std::unique_ptr<Layout>
build(const char *kind, int disks, int width)
{
    if (std::strcmp(kind, "raid5") == 0)
        return std::make_unique<Raid5Layout>(disks);
    if (std::strcmp(kind, "pd") == 0) {
        return std::make_unique<ParityDeclusterLayout>(
            ParityDeclusterLayout::make(disks, width));
    }
    if (std::strcmp(kind, "prime") == 0)
        return std::make_unique<PrimeLayout>(disks, width);
    if (std::strcmp(kind, "datum") == 0)
        return std::make_unique<DatumLayout>(disks, width);
    if (std::strcmp(kind, "pseudo") == 0)
        return std::make_unique<PseudoRandomLayout>(disks, width);
    if (std::strcmp(kind, "pddl") == 0) {
        return std::make_unique<PddlLayout>(
            PddlLayout::make(disks, width));
    }
    if (std::strcmp(kind, "wrapped") == 0) {
        return std::make_unique<WrappedLayout>(
            WrappedLayout::make(disks, width));
    }
    return nullptr;
}

const char *
yesNo(bool value)
{
    return value ? "yes" : "NO";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 4) {
        std::fprintf(stderr,
                     "usage: %s <pddl|wrapped|prime|datum|pd|raid5|pseudo> "
                     "<disks> <width>\n",
                     argv[0]);
        return 1;
    }
    const int disks = std::atoi(argv[2]);
    const int width = std::atoi(argv[3]);

    std::unique_ptr<Layout> layout;
    try {
        layout = build(argv[1], disks, width);
    } catch (const std::exception &error) {
        std::fprintf(stderr, "cannot build layout: %s\n",
                     error.what());
        return 1;
    }
    if (!layout) {
        std::fprintf(stderr, "unknown layout kind '%s'\n", argv[1]);
        return 1;
    }

    std::printf("%s: %d disks, stripe width %d (%d data + %d check)\n",
                layout->name().c_str(), layout->numDisks(),
                layout->stripeWidth(), layout->dataUnitsPerStripe(),
                layout->checkUnitsPerStripe());
    std::printf("pattern: %lld stripes, %lld rows per disk\n\n",
                static_cast<long long>(layout->stripesPerPeriod()),
                static_cast<long long>(
                    layout->unitsPerDiskPerPeriod()));

    if (auto *pddl = dynamic_cast<PddlLayout *>(layout.get())) {
        std::printf("base permutations (%s development):\n",
                    pddl->group().xor_development ? "XOR" : "mod-n");
        for (const auto &perm : pddl->group().perms) {
            std::printf("  (");
            for (int v : perm)
                std::printf(" %d", v);
            std::printf(" )\n");
        }
        std::printf("\n");
    }

    // Goals checklist.
    std::printf("goal #1 single failure correcting : %s\n",
                yesNo(checkSingleFailureCorrecting(*layout)));
    std::printf("goal #2 distributed parity        : %s\n",
                yesNo(isBalanced(checkUnitsPerDisk(*layout))));
    bool recon_balanced = true;
    for (int f = 0; f < layout->numDisks(); ++f) {
        recon_balanced = recon_balanced &&
                         reconstructionWorkload(*layout, f)
                             .balancedReads(f);
    }
    std::printf("goal #3 distributed reconstruction: %s\n",
                yesNo(recon_balanced));
    std::printf("goal #4 large write optimization  : yes (structural)"
                "\n");
    std::printf("goal #5 maximal read parallelism  : avg %.2f / %d "
                "disks for %d-unit reads\n",
                averageReadParallelism(*layout, layout->numDisks()),
                layout->numDisks(), layout->numDisks());
    std::printf("goal #7 distributed sparing       : %s\n",
                layout->hasSparing()
                    ? yesNo(isBalanced(spareUnitsPerDisk(*layout)))
                    : "n/a (no spare space)");
    std::printf("address soundness (collision free): %s\n\n",
                yesNo(checkAddressCollisionFree(*layout)));

    // Space overheads.
    auto parity = checkUnitsPerDisk(*layout);
    auto spare = spareUnitsPerDisk(*layout);
    double rows =
        static_cast<double>(layout->unitsPerDiskPerPeriod());
    std::printf("space: %.1f%% parity, %.1f%% spare, %.1f%% data\n",
                100.0 * static_cast<double>(parity[0]) / rows,
                100.0 * static_cast<double>(spare[0]) / rows,
                100.0 *
                    (rows - static_cast<double>(parity[0] + spare[0])) /
                    rows);

    // Reconstruction tally for disk 0.
    ReconstructionTally tally = reconstructionWorkload(*layout, 0);
    std::printf("\ndisk 0 fails: reconstruction reads per disk:");
    for (int d = 0; d < layout->numDisks(); ++d)
        std::printf(" %lld", static_cast<long long>(tally.reads[d]));
    if (layout->hasSparing()) {
        std::printf("\n              spare writes per disk:       ");
        for (int d = 0; d < layout->numDisks(); ++d) {
            std::printf(" %lld",
                        static_cast<long long>(tally.writes[d]));
        }
    }
    std::printf("\n");
    return 0;
}
