/**
 * @file
 * Multiple-failure tolerance: PDDL with more than one check block
 * per stripe (paper section 5: "PDDL can be adjusted to schemes
 * using more than one check block per stripe"), and with extra
 * distributed spares.
 *
 * Usage: multi_failure
 */

#include <cstdio>
#include <set>

#include "core/pddl_layout.hh"
#include "layout/properties.hh"

using namespace pddl;

namespace {

void
describe(const PddlLayout &layout, const char *caption)
{
    std::printf("== %s ==\n", caption);
    std::printf("%d disks, stripes of %d data + %d check units\n",
                layout.numDisks(), layout.dataUnitsPerStripe(),
                layout.checkUnitsPerStripe());

    auto parity = checkUnitsPerDisk(layout);
    auto spare = spareUnitsPerDisk(layout);
    double rows =
        static_cast<double>(layout.unitsPerDiskPerPeriod());
    std::printf("space: %.1f%% check, %.1f%% spare\n",
                100.0 * static_cast<double>(parity[0]) / rows,
                100.0 * static_cast<double>(spare[0]) / rows);
    std::printf("check balance: %s, spare balance: %s\n",
                isBalanced(parity) ? "exact" : "UNEVEN",
                isBalanced(spare) ? "exact" : "UNEVEN");

    // Erasure tolerance: with q check units per stripe, any q disk
    // losses leave >= k - q units of every stripe intact, enough for
    // an MDS code over the stripe. Verify the geometric part: no two
    // units of a stripe share a disk.
    std::printf("single-failure-correcting placement: %s\n",
                checkSingleFailureCorrecting(layout) ? "yes" : "NO");

    const int q = layout.checkUnitsPerStripe();
    std::printf("=> any %d concurrent disk failures leave every "
                "stripe decodable (MDS over %d units)\n\n",
                q, layout.stripeWidth());
}

} // namespace

int
main()
{
    // Single failure tolerance: the paper's configuration.
    describe(PddlLayout(boseConstruction(13, 4), 1),
             "PDDL, 13 disks, 1 check unit (paper configuration)");

    // Two check units per stripe: tolerates double failures.
    describe(PddlLayout(boseConstruction(13, 4), 2),
             "PDDL, 13 disks, 2 check units (double failure "
             "tolerant)");

    // Wider stripes with two checks on 31 disks.
    describe(PddlLayout(boseConstruction(31, 6), 2),
             "PDDL, 31 disks, width 6, 2 check units");

    // Demonstrate decodability after two losses with q = 2.
    PddlLayout layout(boseConstruction(13, 4), 2);
    const int lost_a = 2, lost_b = 9;
    int worst_surviving = layout.stripeWidth();
    for (int64_t s = 0; s < layout.stripesPerPeriod(); ++s) {
        int surviving = 0;
        for (int pos = 0; pos < layout.stripeWidth(); ++pos) {
            int disk = layout.map({s, pos}).disk;
            if (disk != lost_a && disk != lost_b)
                ++surviving;
        }
        worst_surviving = std::min(worst_surviving, surviving);
    }
    std::printf("disks %d and %d both fail: every stripe keeps >= %d "
                "of %d units (need %d data units) -> %s\n",
                lost_a, lost_b, worst_surviving, layout.stripeWidth(),
                layout.dataUnitsPerStripe(),
                worst_surviving >= layout.dataUnitsPerStripe()
                    ? "recoverable"
                    : "DATA LOSS");
    return 0;
}
