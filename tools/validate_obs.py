#!/usr/bin/env python3
"""End-to-end validation of the observability layer.

Runs one bench binary with --trace/--metrics and checks the contract
the docs promise:

 1. the trace file is valid Chrome trace_event JSON: known phases,
    monotone non-decreasing timestamps, paired async begin/end ids,
    named lanes;
 2. the metrics file is a valid pddl-metrics-v1 document with sorted
    series names and internally consistent histograms;
 3. the BENCH JSON (rows + embedded metrics) is bit-identical between
    --threads=1 and --threads=N once the documented wall-clock fields
    (wall_time_s, threads, wall_ms) are stripped.

Usage: validate_obs.py <bench-binary> [--threads N] [--keep]
Exit code 0 on success; prints the first violated check otherwise.
"""

import argparse
import json
import pathlib
import shutil
import subprocess
import sys
import tempfile

KNOWN_PHASES = {"X", "B", "E", "b", "e", "i", "C", "M"}

# Host-dependent fields, documented in README as the only ones that
# may differ between runs of the same grid.
WALL_FIELDS = {"wall_time_s", "wall_ms", "threads"}


def fail(message):
    print(f"validate_obs: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition, message):
    if not condition:
        fail(message)


def run_bench(binary, out_dir, threads, trace=False, metrics=False):
    out_dir.mkdir(parents=True, exist_ok=True)
    cmd = [str(binary), f"--json={out_dir}", f"--threads={threads}"]
    if trace:
        cmd.append(f"--trace={out_dir}/trace.json")
    if metrics:
        cmd.append(f"--metrics={out_dir}/metrics.json")
    proc = subprocess.run(cmd, capture_output=True, text=True)
    check(proc.returncode == 0,
          f"{' '.join(cmd)} exited {proc.returncode}:\n{proc.stderr}")
    return out_dir


def validate_trace(path):
    check(path.is_file(), f"trace file {path} was not written")
    with open(path) as fh:
        doc = json.load(fh)

    events = doc.get("traceEvents")
    check(isinstance(events, list) and events,
          "trace has no traceEvents array")
    dropped = doc.get("dropped", 0)
    check(dropped >= 0, "negative dropped count")
    # A wrapped flight recorder legitimately loses async begins.
    check_pairing = dropped == 0

    lanes = set()
    named_lanes = set()
    async_open = {}
    last_ts = None
    for event in events:
        phase = event.get("ph")
        check(phase in KNOWN_PHASES, f"unknown phase {phase!r}")
        if phase == "M":
            check(event.get("name") == "thread_name",
                  f"unexpected metadata record {event.get('name')!r}")
            named_lanes.add(event["tid"])
            continue
        ts = event.get("ts")
        check(isinstance(ts, (int, float)) and ts >= 0,
              f"bad timestamp {ts!r}")
        if last_ts is not None:
            check(ts >= last_ts,
                  f"timestamps not monotone: {ts} after {last_ts}")
        last_ts = ts
        lanes.add(event["tid"])
        if phase == "X":
            check(event.get("dur", -1) >= 0,
                  "complete span without a duration")
        if phase == "b":
            key = (event["name"], event.get("id"))
            async_open[key] = async_open.get(key, 0) + 1
        if phase == "e" and check_pairing:
            key = (event["name"], event.get("id"))
            check(async_open.get(key, 0) > 0,
                  f"async end without begin: {key}")
            async_open[key] -= 1
        if phase == "C":
            check("id" in event,
                  "counter sample without an id (tracks would merge)")

    check(lanes <= named_lanes,
          f"unnamed lanes in trace: {sorted(lanes - named_lanes)}")
    phases_seen = {e.get("ph") for e in events}
    for wanted in ("X", "C", "M"):
        check(wanted in phases_seen,
              f"expected at least one {wanted!r} event")
    print(f"validate_obs: trace OK "
          f"({len(events)} events, {len(lanes)} lanes)")


def validate_metrics(path):
    check(path.is_file(), f"metrics file {path} was not written")
    with open(path) as fh:
        doc = json.load(fh)
    check(doc.get("schema") == "pddl-metrics-v1",
          f"unexpected metrics schema {doc.get('schema')!r}")
    metrics = doc.get("metrics", {})

    for section in ("counters", "gauges", "histograms"):
        series = metrics.get(section, {})
        check(isinstance(series, dict), f"{section} is not an object")
        names = list(series)
        check(names == sorted(names), f"{section} names not sorted")

    check(metrics.get("counters"), "no counters recorded")
    for name, hist in metrics.get("histograms", {}).items():
        # "buckets" carries one entry per "le" bound plus the
        # overflow bucket; together they partition every sample.
        check(len(hist["buckets"]) == len(hist["le"]) + 1,
              f"histogram {name}: bucket/bound count mismatch")
        in_buckets = sum(hist["buckets"])
        check(in_buckets == hist["count"],
              f"histogram {name}: buckets sum {in_buckets} != "
              f"count {hist['count']}")
        if hist["count"] > 0:
            check(hist["min"] <= hist["max"],
                  f"histogram {name}: min > max")
    print(f"validate_obs: metrics OK "
          f"({len(metrics.get('counters', {}))} counters, "
          f"{len(metrics.get('histograms', {}))} histograms)")


def strip_wall(value):
    if isinstance(value, dict):
        return {k: strip_wall(v) for k, v in value.items()
                if k not in WALL_FIELDS}
    if isinstance(value, list):
        return [strip_wall(v) for v in value]
    return value


def canonical_bench(out_dir):
    docs = {}
    for path in sorted(out_dir.glob("BENCH_*.json")):
        with open(path) as fh:
            docs[path.name] = strip_wall(json.load(fh))
    check(docs, f"no BENCH_*.json produced in {out_dir}")
    return json.dumps(docs, sort_keys=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("binary", help="bench binary to exercise")
    parser.add_argument("--threads", type=int, default=8,
                        help="parallel thread count for the "
                             "determinism check (default 8)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch directory")
    args = parser.parse_args()

    binary = pathlib.Path(args.binary)
    check(binary.is_file(), f"no such bench binary: {binary}")

    scratch = pathlib.Path(tempfile.mkdtemp(prefix="validate_obs_"))
    try:
        serial = run_bench(binary, scratch / "serial", threads=1,
                           trace=True, metrics=True)
        validate_trace(serial / "trace.json")
        validate_metrics(serial / "metrics.json")

        parallel = run_bench(binary, scratch / "parallel",
                             threads=args.threads, metrics=True)
        check(canonical_bench(serial) == canonical_bench(parallel),
              f"BENCH rows differ between --threads=1 and "
              f"--threads={args.threads} (after stripping "
              f"{sorted(WALL_FIELDS)})")
        serial_metrics = (serial / "metrics.json").read_bytes()
        parallel_metrics = (parallel / "metrics.json").read_bytes()
        check(serial_metrics == parallel_metrics,
              "metrics files differ between thread counts")
        print(f"validate_obs: determinism OK "
              f"(--threads=1 == --threads={args.threads})")
    finally:
        if args.keep:
            print(f"validate_obs: scratch kept at {scratch}")
        else:
            shutil.rmtree(scratch, ignore_errors=True)

    print("validate_obs: PASS")


if __name__ == "__main__":
    main()
