#!/usr/bin/env python3
"""Replay a tuner-dumped winning configuration and verify it.

Takes a pddl-autotune-v1 winner document (the --out file of
bench_autotune), validates its schema, then re-runs the recorded
scenario through `bench_autotune --replay` and asserts the replayed
objective is bit-identical to the recorded one. This is the proof
the winning config is reproducible from the JSON alone: the file
carries the full scenario (knobs, workload, sample budget), the
protocol seeds and the objective, so nothing outside it feeds the
re-run.

Usage: replay_scenario.py <winner.json> [--bench <bench_autotune>]
Exit code 0 when the replay matches; prints the first violated
check otherwise.
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys


def fail(message):
    print(f"replay_scenario: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition, message):
    if not condition:
        fail(message)


def validate_winner(doc):
    """Schema checks on the pddl-autotune-v1 document."""
    check(isinstance(doc, dict), "winner document is not an object")
    check(doc.get("schema") == "pddl-autotune-v1",
          f"schema is {doc.get('schema')!r}, want 'pddl-autotune-v1'")
    check(doc.get("objective") in {"p99", "p999", "p95", "mean"},
          f"unknown objective {doc.get('objective')!r}")
    seeds = doc.get("seeds")
    check(isinstance(seeds, list) and seeds and
          all(isinstance(s, int) for s in seeds),
          "seeds must be a non-empty list of integers")
    for key in ("objective_value", "baseline_value", "train_value",
                "baseline_train_value"):
        check(isinstance(doc.get(key), (int, float)),
              f"{key} must be a number")
    check(doc["objective_value"] < doc["baseline_value"],
          "recorded tuned objective does not beat the baseline "
          f"({doc['objective_value']} vs {doc['baseline_value']})")
    scenario = doc.get("scenario")
    check(isinstance(scenario, dict), "scenario must be an object")
    shards = scenario.get("shards")
    check(isinstance(shards, list) and shards,
          "scenario.shards must be a non-empty list")
    check(isinstance(scenario.get("samples"), int) and
          scenario["samples"] >= 1,
          "scenario.samples must carry the replay budget")


def main():
    parser = argparse.ArgumentParser(
        description="Replay a pddl-autotune-v1 winner and verify "
                    "the recorded objective reproduces.")
    parser.add_argument("winner", type=pathlib.Path,
                        help="winner JSON dumped by bench_autotune "
                             "--out")
    parser.add_argument("--bench", type=pathlib.Path,
                        default=pathlib.Path("bench/bench_autotune"),
                        help="bench_autotune binary (default: "
                             "bench/bench_autotune)")
    args = parser.parse_args()

    check(args.winner.is_file(), f"cannot read {args.winner}")
    try:
        doc = json.loads(args.winner.read_text())
    except json.JSONDecodeError as error:
        fail(f"{args.winner}: {error}")
    validate_winner(doc)

    check(args.bench.is_file(), f"no bench binary at {args.bench} "
                                "(build it, or pass --bench)")
    result = subprocess.run(
        [str(args.bench), "--replay", str(args.winner)],
        capture_output=True, text=True)
    sys.stderr.write(result.stderr)
    match = re.search(
        r"replay objective ([-0-9.e+]+) recorded ([-0-9.e+]+) (\w+)",
        result.stdout)
    check(match is not None,
          f"no replay verdict in output:\n{result.stdout}")
    replayed, recorded, verdict = match.groups()
    check(verdict == "MATCH" and result.returncode == 0,
          f"replay {replayed} != recorded {recorded}")
    check(float(recorded) == doc["objective_value"],
          "the binary's recorded value disagrees with the document")

    print(f"replay_scenario: OK: objective {replayed} reproduced "
          f"bit-identically from {args.winner}")


if __name__ == "__main__":
    main()
