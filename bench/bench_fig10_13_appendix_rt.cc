/**
 * @file
 * Figures 10-13 reproduction (appendix): response times for the
 * remaining access sizes 24..288 KB, reads and writes, failure-free
 * and single-failure modes.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Figures 10-13 (appendix): response times for 24-288 KB, all modes");
    const std::vector<int> sizes = {24, 72, 120, 168, 216, 288};
    bench::runResponseTimeFigure(
        "Figure 10", "Read response times, failure-free mode", sizes,
        AccessType::Read, ArrayMode::FaultFree);
    bench::runResponseTimeFigure(
        "Figure 11", "Write response times, failure-free mode", sizes,
        AccessType::Write, ArrayMode::FaultFree);
    bench::runResponseTimeFigure(
        "Figure 12", "Read response times, single failure mode", sizes,
        AccessType::Read, ArrayMode::Degraded);
    bench::runResponseTimeFigure(
        "Figure 13", "Write response times, single failure mode",
        sizes, AccessType::Write, ArrayMode::Degraded);
    return 0;
}
