/**
 * @file
 * Figure 16 reproduction: degraded write seek and no-switch counts
 * per logical access, 8..336 KB.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Figure 16: degraded write seek/no-switch counts per access");
    bench::runSeekCountFigure("Figure 16",
                              "Degraded write; seek and no-switch "
                              "counts",
                              AccessType::Write, ArrayMode::Degraded);
    return 0;
}
