/**
 * @file
 * Ablation: stripe unit size. The paper leaves the optimal stripe
 * unit open (section 4); this sweep holds the logical access size at
 * 96 KB and varies the unit from 4 KB to 64 KB.
 */

#include "bench_util.hh"

int
main()
{
    using namespace pddl;
    PddlLayout layout = PddlLayout::make(13, 4);
    DiskModel model = DiskModel::hp2247();

    std::printf("Ablation: stripe unit size (PDDL, 96 KB accesses)\n");
    std::printf("(cells = mean response ms @ achieved accesses/sec)"
                "\n\n");
    std::printf("%-12s", "unit KB");
    for (int clients : {1, 8, 25})
        std::printf("   %2d clients ", clients);
    std::printf("\n");
    bench::printRule(5);
    for (int unit_kb : {4, 8, 16, 32, 64}) {
        const int unit_sectors = unit_kb * 2; // 512 B sectors
        const int access_units = 96 / unit_kb;
        std::printf("%-12d", unit_kb);
        for (int clients : {1, 8, 25}) {
            SimConfig config = bench::defaultSimConfig();
            config.clients = clients;
            config.access_units = access_units;
            config.unit_sectors = unit_sectors;
            config.type = AccessType::Read;
            SimResult r = runClosedLoop(layout, model, config);
            std::printf("  %6.1f@%-4.0f", r.mean_response_ms,
                        r.throughput_per_s);
        }
        std::printf("\n");
    }
    std::printf("\nTrade-off: small units spread one access over "
                "more arms (parallel transfer, more seeks);\nlarge "
                "units approach single-disk streaming.\n");
    return 0;
}
