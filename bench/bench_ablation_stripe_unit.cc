/**
 * @file
 * Ablation: stripe unit size. The paper leaves the optimal stripe
 * unit open (section 4); this sweep holds the logical access size at
 * 96 KB and varies the unit from 4 KB to 64 KB.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Ablation: stripe-unit size at a fixed 96 KB logical access");
    PddlLayout layout = PddlLayout::make(13, 4);
    const DeviceModel &model = device::hp2247();

    const char *figure = "Ablation stripe unit";
    const char *caption = "stripe unit size (PDDL, 96 KB accesses)";
    const std::vector<int> unit_kbs = {4, 8, 16, 32, 64};
    const std::vector<int> client_counts = {1, 8, 25};

    std::vector<harness::Experiment> experiments;
    for (int unit_kb : unit_kbs) {
        for (int clients : client_counts) {
            harness::Experiment experiment;
            experiment.point = {figure,
                                "PDDL/unit=" +
                                    std::to_string(unit_kb) + "KB",
                                96, clients, AccessType::Read,
                                ArrayMode::FaultFree};
            experiment.config = bench::defaultSimConfig();
            experiment.config.clients = clients;
            experiment.config.access_units = 96 / unit_kb;
            experiment.config.unit_sectors = unit_kb * 2; // 512 B
            experiment.config.type = AccessType::Read;
            experiment.layout = &layout;
            experiment.device = &model;
            experiments.push_back(std::move(experiment));
        }
    }
    harness::RunSummary summary =
        bench::runGrid(figure, caption, experiments);

    std::printf("Ablation: %s\n", caption);
    std::printf("(cells = mean response ms @ achieved accesses/sec)"
                "\n\n");
    std::printf("%-12s", "unit KB");
    for (int clients : client_counts)
        std::printf("   %2d clients ", clients);
    std::printf("\n");
    bench::printRule(5);
    size_t index = 0;
    for (int unit_kb : unit_kbs) {
        std::printf("%-12d", unit_kb);
        for (size_t c = 0; c < client_counts.size(); ++c) {
            const SimResult &r = summary.points[index++].result;
            std::printf("  %6.1f@%-4.0f", r.mean_response_ms,
                        r.throughput_per_s);
        }
        std::printf("\n");
    }
    std::printf("\nTrade-off: small units spread one access over "
                "more arms (parallel transfer, more seeks);\nlarge "
                "units approach single-disk streaming.\n");
    return 0;
}
