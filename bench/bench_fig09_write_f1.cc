/**
 * @file
 * Figure 9 reproduction: single-failure write response times for
 * 8..240 KB accesses.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Figure 9: degraded write response times, 8-240 KB");
    bench::runResponseTimeFigure(
        "Figure 9", "Write response times, single failure mode",
        {8, 48, 96, 144, 192, 240}, AccessType::Write,
        ArrayMode::Degraded);
    return 0;
}
