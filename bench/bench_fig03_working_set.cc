/**
 * @file
 * Figure 3 reproduction: disk working-set sizes, computed
 * analytically by averaging over every aligned offset in the array
 * (exactly the paper's procedure).
 *
 * Columns: ffread / ffwrite / f1read / f1write per access size; for
 * PDDL, f1 designates the reconstruction (degraded) mode, matching
 * the figure's caption.
 */

#include "array/working_set.hh"
#include "bench_util.hh"

int
main()
{
    using namespace pddl;
    auto layouts = bench::evaluatedLayouts();
    std::printf("Figure 3: Disk working set sizes (averaged over "
                "every possible offset)\n\n");
    std::printf("%-20s %8s %8s %8s %8s %8s\n", "layout", "size KB",
                "ffread", "ffwrite", "f1read", "f1write");
    bench::printRule(7);
    for (const auto &layout : layouts) {
        for (int kb : {8, 48, 96, 144, 192, 240}) {
            int units = bench::unitsForKb(kb);
            double ffr = averageWorkingSet(*layout, units,
                                           AccessType::Read);
            double ffw = averageWorkingSet(*layout, units,
                                           AccessType::Write);
            double f1r =
                averageWorkingSet(*layout, units, AccessType::Read,
                                  ArrayMode::Degraded, 0);
            double f1w =
                averageWorkingSet(*layout, units, AccessType::Write,
                                  ArrayMode::Degraded, 0);
            std::printf("%-20s %8d %8.2f %8.2f %8.2f %8.2f\n",
                        layout->name().c_str(), kb, ffr, ffw, f1r,
                        f1w);
        }
        std::printf("\n");
    }

    // The orderings the paper calls out below the figure.
    std::printf("Paper ordering check (fault-free reads):\n");
    std::printf("  sizes <= 120 KB: DATUM <= Parity Declustering <= "
                "PDDL <= PRIME <= RAID-5\n");
    std::printf("  sizes  > 120 KB: DATUM <= PDDL <= Parity "
                "Declustering <= PRIME <= RAID-5\n");
    for (int kb : {48, 96, 144, 192}) {
        int units = bench::unitsForKb(kb);
        std::printf("  %3d KB:", kb);
        for (const auto &layout : layouts) {
            std::printf(" %s=%.2f", layout->name().c_str(),
                        averageWorkingSet(*layout, units,
                                          AccessType::Read));
        }
        std::printf("\n");
    }
    return 0;
}
