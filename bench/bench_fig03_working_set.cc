/**
 * @file
 * Figure 3 reproduction: disk working-set sizes, computed
 * analytically by averaging over every aligned offset in the array
 * (exactly the paper's procedure).
 *
 * Columns: ffread / ffwrite / f1read / f1write per access size; for
 * PDDL, f1 designates the reconstruction (degraded) mode, matching
 * the figure's caption. The per-(layout, size) sweeps are pure
 * computation but independent, so they run as custom grid points on
 * the parallel runner like every simulated figure.
 */

#include "array/working_set.hh"
#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Figure 3: analytic disk working-set sizes per access size and mode");
    auto layouts = bench::evaluatedLayouts();

    const char *figure = "Figure 3";
    const char *caption =
        "Disk working set sizes (averaged over every possible offset)";
    const std::vector<int> sizes = {8, 48, 96, 144, 192, 240};

    std::vector<harness::Experiment> experiments;
    for (const auto &layout : layouts) {
        for (int kb : sizes) {
            harness::Experiment experiment;
            experiment.point = {figure, layout->name(), kb, 0,
                                AccessType::Read,
                                ArrayMode::FaultFree};
            const Layout *l = layout.get();
            const int units = bench::unitsForKb(kb);
            experiment.custom = [l, units](uint64_t,
                                           harness::Extras &extras) {
                extras.emplace_back(
                    "ffread", averageWorkingSet(*l, units,
                                                AccessType::Read));
                extras.emplace_back(
                    "ffwrite", averageWorkingSet(*l, units,
                                                 AccessType::Write));
                extras.emplace_back(
                    "f1read",
                    averageWorkingSet(*l, units, AccessType::Read,
                                      ArrayMode::Degraded, 0));
                extras.emplace_back(
                    "f1write",
                    averageWorkingSet(*l, units, AccessType::Write,
                                      ArrayMode::Degraded, 0));
                return SimResult{};
            };
            experiments.push_back(std::move(experiment));
        }
    }
    harness::RunSummary summary =
        bench::runGrid(figure, caption, experiments);

    std::printf("%s: %s\n\n", figure, caption);
    std::printf("%-20s %8s %8s %8s %8s %8s\n", "layout", "size KB",
                "ffread", "ffwrite", "f1read", "f1write");
    bench::printRule(7);
    size_t index = 0;
    for (const auto &layout : layouts) {
        for (int kb : sizes) {
            const harness::Extras &e = summary.points[index++].extras;
            std::printf("%-20s %8d %8.2f %8.2f %8.2f %8.2f\n",
                        layout->name().c_str(), kb, e[0].second,
                        e[1].second, e[2].second, e[3].second);
        }
        std::printf("\n");
    }

    // The orderings the paper calls out below the figure.
    std::printf("Paper ordering check (fault-free reads):\n");
    std::printf("  sizes <= 120 KB: DATUM <= Parity Declustering <= "
                "PDDL <= PRIME <= RAID-5\n");
    std::printf("  sizes  > 120 KB: DATUM <= PDDL <= Parity "
                "Declustering <= PRIME <= RAID-5\n");
    for (int kb : {48, 96, 144, 192}) {
        int units = bench::unitsForKb(kb);
        std::printf("  %3d KB:", kb);
        for (const auto &layout : layouts) {
            std::printf(" %s=%.2f", layout->name().c_str(),
                        averageWorkingSet(*layout, units,
                                          AccessType::Read));
        }
        std::printf("\n");
    }
    return 0;
}
