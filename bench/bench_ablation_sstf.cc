/**
 * @file
 * Ablation: SSTF scan-window depth (the paper fixes it at 20,
 * Table 2). Sweeps FCFS (window 1) through deep windows and reports
 * the response-time impact on a heavy mixed workload.
 */

#include "bench_util.hh"

int
main()
{
    using namespace pddl;
    PddlLayout layout = PddlLayout::make(13, 4);
    DiskModel model = DiskModel::hp2247();

    std::printf("Ablation: SSTF scan window (PDDL, 13 disks)\n");
    std::printf("(cells = mean response ms @ achieved accesses/sec)"
                "\n\n");
    std::printf("%-10s", "window");
    for (int clients : {4, 10, 25})
        std::printf("   %2d clients ", clients);
    std::printf("\n");
    bench::printRule(5);
    for (int window : {1, 2, 5, 10, 20, 40}) {
        std::printf("%-10d", window);
        for (int clients : {4, 10, 25}) {
            SimConfig config = bench::defaultSimConfig();
            config.clients = clients;
            config.access_units = 3; // 24 KB
            config.type = AccessType::Read;
            config.sstf_window = window;
            SimResult r = runClosedLoop(layout, model, config);
            std::printf("  %6.1f@%-4.0f", r.mean_response_ms,
                        r.throughput_per_s);
        }
        std::printf("\n");
    }
    std::printf("\nExpected: window 1 (FCFS) is slowest under load; "
                "gains flatten past the paper's 20.\n");
    return 0;
}
