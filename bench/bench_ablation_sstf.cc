/**
 * @file
 * Ablation: SSTF scan-window depth (the paper fixes it at 20,
 * Table 2). Sweeps FCFS (window 1) through deep windows and reports
 * the response-time impact on a heavy mixed workload.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Ablation: SSTF scan-window depth vs response time");
    PddlLayout layout = PddlLayout::make(13, 4);
    const DeviceModel &model = device::hp2247();

    const char *figure = "Ablation sstf";
    const char *caption = "SSTF scan window (PDDL, 13 disks)";
    const std::vector<int> windows = {1, 2, 5, 10, 20, 40};
    const std::vector<int> client_counts = {4, 10, 25};

    std::vector<harness::Experiment> experiments;
    for (int window : windows) {
        for (int clients : client_counts) {
            harness::Experiment experiment;
            // The window is part of the series label so that each
            // sweep point derives a distinct seed.
            experiment.point = {figure,
                                "PDDL/window=" +
                                    std::to_string(window),
                                24, clients, AccessType::Read,
                                ArrayMode::FaultFree};
            experiment.config = bench::defaultSimConfig();
            experiment.config.clients = clients;
            experiment.config.access_units = 3; // 24 KB
            experiment.config.type = AccessType::Read;
            experiment.config.sstf_window = window;
            experiment.layout = &layout;
            experiment.device = &model;
            experiments.push_back(std::move(experiment));
        }
    }
    harness::RunSummary summary =
        bench::runGrid(figure, caption, experiments);

    std::printf("Ablation: %s\n", caption);
    std::printf("(cells = mean response ms @ achieved accesses/sec)"
                "\n\n");
    std::printf("%-10s", "window");
    for (int clients : client_counts)
        std::printf("   %2d clients ", clients);
    std::printf("\n");
    bench::printRule(5);
    size_t index = 0;
    for (int window : windows) {
        std::printf("%-10d", window);
        for (size_t c = 0; c < client_counts.size(); ++c) {
            const SimResult &r = summary.points[index++].result;
            std::printf("  %6.1f@%-4.0f", r.mean_response_ms,
                        r.throughput_per_s);
        }
        std::printf("\n");
    }
    std::printf("\nExpected: window 1 (FCFS) is slowest under load; "
                "gains flatten past the paper's 20.\n");
    return 0;
}
