/**
 * @file
 * Figure 6 reproduction: single-failure (degraded / reconstruction
 * mode) read response times for 8..240 KB accesses.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Figure 6: degraded (single-failure) read response times, 8-240 KB");
    bench::runResponseTimeFigure(
        "Figure 6", "Read response times, single failure mode",
        {8, 48, 96, 144, 192, 240}, AccessType::Read,
        ArrayMode::Degraded);
    return 0;
}
