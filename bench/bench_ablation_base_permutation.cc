/**
 * @file
 * Ablation: satisfactory vs unsatisfactory base permutation. The
 * paper's section 2 shows the identity permutation concentrates the
 * reconstruction workload on four disks; this bench quantifies the
 * degraded-mode response-time cost of that imbalance.
 */

#include "bench_util.hh"
#include "layout/properties.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Ablation: satisfactory vs unsatisfactory base permutation");
    const DeviceModel &model = device::hp2247();

    // Satisfactory (Bose) vs identity base permutation, 13 disks.
    PermutationGroup bose = boseConstruction(13, 4);
    PermutationGroup identity = bose;
    identity.perms = {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}};

    std::printf("Ablation: base permutation quality (n=13, k=4)\n\n");
    for (const auto &[name, group] :
         {std::pair<const char *, PermutationGroup &>{"Bose", bose},
          {"identity", identity}}) {
        auto tally = reconstructionReadTally(group);
        int64_t lo = tally[1], hi = tally[1];
        for (int d = 2; d < group.n; ++d) {
            lo = std::min(lo, tally[d]);
            hi = std::max(hi, tally[d]);
        }
        std::printf("%-10s satisfactory=%-3s reconstruction reads "
                    "per surviving disk in [%lld, %lld]\n",
                    name, isSatisfactory(group) ? "yes" : "no",
                    static_cast<long long>(lo),
                    static_cast<long long>(hi));
    }

    const char *figure = "Ablation base permutation";
    const char *caption =
        "base permutation quality, degraded 8 KB reads (n=13, k=4)";
    const std::vector<int> client_counts = {4, 10, 25};
    PddlLayout bose_layout(bose);
    PddlLayout identity_layout(identity, 1,
                               /*require_satisfactory=*/false);
    const std::pair<const char *, const PddlLayout *> variants[] = {
        {"Bose", &bose_layout}, {"identity", &identity_layout}};

    std::vector<harness::Experiment> experiments;
    for (const auto &[name, layout] : variants) {
        for (int clients : client_counts) {
            harness::Experiment experiment;
            experiment.point = {figure, name, 8, clients,
                                AccessType::Read, ArrayMode::Degraded};
            experiment.config = bench::defaultSimConfig();
            experiment.config.clients = clients;
            experiment.config.access_units = 1;
            experiment.config.type = AccessType::Read;
            experiment.config.mode = ArrayMode::Degraded;
            experiment.config.failed_disk = 0;
            experiment.layout = layout;
            experiment.device = &model;
            experiments.push_back(std::move(experiment));
        }
    }
    harness::RunSummary summary =
        bench::runGrid(figure, caption, experiments);

    std::printf("\nDegraded 8 KB read response times:\n");
    std::printf("%-12s", "layout");
    for (int clients : client_counts)
        std::printf("   %2d clients ", clients);
    std::printf("\n");
    bench::printRule(5);
    size_t index = 0;
    for (const auto &[name, layout] : variants) {
        std::printf("%-12s", name);
        for (size_t c = 0; c < client_counts.size(); ++c) {
            const SimResult &r = summary.points[index++].result;
            std::printf("  %6.1f@%-4.0f", r.mean_response_ms,
                        r.throughput_per_s);
        }
        std::printf("\n");
    }
    std::printf("\nExpected: the identity permutation's hot disks "
                "inflate degraded response times under load.\n");
    return 0;
}
