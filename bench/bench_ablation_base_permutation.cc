/**
 * @file
 * Ablation: satisfactory vs unsatisfactory base permutation. The
 * paper's section 2 shows the identity permutation concentrates the
 * reconstruction workload on four disks; this bench quantifies the
 * degraded-mode response-time cost of that imbalance.
 */

#include "bench_util.hh"
#include "layout/properties.hh"

int
main()
{
    using namespace pddl;
    DiskModel model = DiskModel::hp2247();

    // Satisfactory (Bose) vs identity base permutation, 13 disks.
    PermutationGroup bose = boseConstruction(13, 4);
    PermutationGroup identity = bose;
    identity.perms = {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}};

    std::printf("Ablation: base permutation quality (n=13, k=4)\n\n");
    for (const auto &[name, group] :
         {std::pair<const char *, PermutationGroup &>{"Bose", bose},
          {"identity", identity}}) {
        auto tally = reconstructionReadTally(group);
        int64_t lo = tally[1], hi = tally[1];
        for (int d = 2; d < group.n; ++d) {
            lo = std::min(lo, tally[d]);
            hi = std::max(hi, tally[d]);
        }
        std::printf("%-10s satisfactory=%-3s reconstruction reads "
                    "per surviving disk in [%lld, %lld]\n",
                    name, isSatisfactory(group) ? "yes" : "no",
                    static_cast<long long>(lo),
                    static_cast<long long>(hi));
    }

    std::printf("\nDegraded 8 KB read response times:\n");
    std::printf("%-12s", "layout");
    for (int clients : {4, 10, 25})
        std::printf("   %2d clients ", clients);
    std::printf("\n");
    bench::printRule(5);
    for (const auto &[name, group] :
         {std::pair<const char *, PermutationGroup &>{"Bose", bose},
          {"identity", identity}}) {
        PddlLayout layout(group, 1, /*require_satisfactory=*/false);
        std::printf("%-12s", name);
        for (int clients : {4, 10, 25}) {
            SimConfig config = bench::defaultSimConfig();
            config.clients = clients;
            config.access_units = 1;
            config.type = AccessType::Read;
            config.mode = ArrayMode::Degraded;
            config.failed_disk = 0;
            SimResult r = runClosedLoop(layout, model, config);
            std::printf("  %6.1f@%-4.0f", r.mean_response_ms,
                        r.throughput_per_s);
        }
        std::printf("\n");
    }
    std::printf("\nExpected: the identity permutation's hot disks "
                "inflate degraded response times under load.\n");
    return 0;
}
