/**
 * @file
 * Extension: Monte-Carlo reliability sweep.
 *
 * The paper evaluates degraded and reconstruction performance as
 * separate frozen modes; this bench runs the full live lifecycle
 * instead -- fault-free service, injected failures, degraded
 * operation, distributed-spare rebuild, restored service, and
 * (sometimes) data loss -- as one continuous mission per trial, the
 * reliability lens of the parity-declustering literature (Dau et
 * al.; Thomasian). Sweeps disk failure rate x rebuild aggressiveness
 * x layout family, N independent missions per cell, and reports the
 * data-loss fraction, rebuild durations, and the response time
 * clients saw inside the degraded window.
 *
 * Timescales are accelerated (MTTF comparable to rebuild duration)
 * so loss events occur at measurable rates; loss fractions compare
 * configurations, they are not absolute MTTDL predictions. Seeds
 * derive from each cell's identity, so --json output is bit-identical
 * for every --threads value.
 */

#include "bench_util.hh"
#include "core/wrapped_layout.hh"
#include "fault/reliability.hh"

using namespace pddl;

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv,
                     "Reliability: Monte-Carlo sweep of failure rate "
                     "x rebuild aggressiveness x layout");
    const bool full = bench::fullFidelity();
    const DeviceModel &model = pddl::device::hp2247();

    PddlLayout pddl = PddlLayout::make(13, 4);
    WrappedLayout wrapped = WrappedLayout::make(14, 4);
    const std::vector<const Layout *> layouts = {&pddl, &wrapped};

    ReliabilityGridConfig grid;
    grid.figure = "Reliability";
    grid.trials = full ? 25 : 5;
    grid.base.mission_ms = full ? 60000.0 : 30000.0;
    grid.base.clients = 4;
    grid.base.access_units = 3; // 24 KB reads
    grid.base.rebuild_stripes = full ? 3900 : 1300;
    grid.base.latent_mtbe_ms = 2500.0;
    grid.base.scrub_interval_ms = 20.0;

    // Per-disk MTTFs spanning "a failure is near-certain" to "two
    // failures in one mission are rare": with 13-14 disks and 30 s
    // missions, the expected failure count per mission runs ~2.6
    // down to ~0.3 across this sweep.
    const std::vector<double> mttfs_ms = {150000.0, 450000.0,
                                          1350000.0};
    const std::vector<int> parallelism = {1, 4, 8};
    for (const Layout *layout : layouts) {
        for (double mttf : mttfs_ms) {
            for (int parallel : parallelism)
                grid.cells.push_back({layout, mttf, parallel});
        }
    }

    const char *caption = "Monte-Carlo failure lifecycle sweep "
                          "(accelerated timescale)";
    auto experiments = buildReliabilityExperiments(grid, model);
    harness::RunSummary summary =
        bench::runGrid(grid.figure.c_str(), caption, experiments);

    std::printf("Reliability: %s\n", caption);
    std::printf("(%d trials/cell, %.0f s missions, %d clients of "
                "24 KB reads, %lld-stripe rebuilds)\n\n",
                grid.trials, grid.base.mission_ms / 1000.0,
                grid.base.clients,
                static_cast<long long>(grid.base.rebuild_stripes));
    std::printf("%-14s %8s %9s %10s %11s %11s %11s %10s\n", "layout",
                "mttf s", "parallel", "loss frac", "rebuilds",
                "rebuild ms", "degr ms/acc", "ff ms/acc");
    bench::printRule(9);
    size_t index = 0;
    for (const Layout *layout : layouts) {
        for (double mttf : mttfs_ms) {
            for (int parallel : parallelism) {
                const harness::PointResult &point =
                    summary.points[index++];
                auto extra = [&](const char *key) {
                    for (const auto &entry : point.extras) {
                        if (entry.first == key)
                            return entry.second;
                    }
                    return 0.0;
                };
                std::printf("%-14s %8.0f %9d %10.2f %11.0f %11.0f "
                            "%11.1f %10.1f\n",
                            layout->name().c_str(), mttf / 1000.0,
                            parallel, extra("data_loss_fraction"),
                            extra("rebuilds_completed"),
                            extra("rebuild_ms_mean"),
                            extra("degraded_response_ms"),
                            point.result.mean_response_ms);
            }
        }
    }
    std::printf(
        "\nReading the table: a wider rebuild shortens the window a "
        "second failure\ncan land in (lower loss fraction) but "
        "inflates the response time degraded\nclients see -- the "
        "trade-off distributed sparing tunes. Scrubbing and\nlatent-"
        "error counters are in the --json extras.\n");
    return 0;
}
