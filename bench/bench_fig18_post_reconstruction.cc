/**
 * @file
 * Figure 18 reproduction: PDDL read response times in fault-free,
 * reconstruction (degraded) and post-reconstruction operation for
 * 8..72 KB accesses.
 */

#include "bench_util.hh"

int
main()
{
    using namespace pddl;
    PddlLayout layout = PddlLayout::make(13, 4);
    DiskModel model = DiskModel::hp2247();

    std::printf("Figure 18: PDDL read response times: fault free, "
                "reconstruction, and post-reconstruction\n");
    std::printf("(cells = mean response ms @ achieved accesses/sec)"
                "\n");
    struct Mode
    {
        const char *name;
        ArrayMode mode;
    };
    const Mode modes[] = {
        {"PDDL (fault free)", ArrayMode::FaultFree},
        {"PDDL reconstruction", ArrayMode::Degraded},
        {"PDDL post-reconstruction", ArrayMode::PostReconstruction},
    };
    for (int kb : {8, 24, 48, 72}) {
        std::printf("\n-- %d KB reads --\n", kb);
        std::printf("%-26s", "mode \\ clients");
        for (int clients : bench::kClientCounts)
            std::printf("  %6d    ", clients);
        std::printf("\n");
        bench::printRule(2 + static_cast<int>(
                                 bench::kClientCounts.size()));
        for (const Mode &mode : modes) {
            std::printf("%-26s", mode.name);
            for (int clients : bench::kClientCounts) {
                SimConfig config = bench::defaultSimConfig();
                config.clients = clients;
                config.access_units = bench::unitsForKb(kb);
                config.type = AccessType::Read;
                config.mode = mode.mode;
                config.failed_disk = 0;
                SimResult r = runClosedLoop(layout, model, config);
                std::printf("  %6.1f@%-4.0f", r.mean_response_ms,
                            r.throughput_per_s);
            }
            std::printf("\n");
        }
    }
    std::printf("\nExpected shape: for stripe-unit sized accesses "
                "post-reconstruction is much faster than\n"
                "reconstruction but slower than fault-free (one disk "
                "fewer); for large accesses the two\nfailure modes "
                "converge.\n");
    return 0;
}
