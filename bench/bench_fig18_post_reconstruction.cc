/**
 * @file
 * Figure 18 reproduction: PDDL read response times in fault-free,
 * reconstruction (degraded) and post-reconstruction operation for
 * 8..72 KB accesses.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Figure 18: PDDL reads in fault-free, reconstruction and post-reconstruction modes");
    PddlLayout layout = PddlLayout::make(13, 4);
    const DeviceModel &model = device::hp2247();

    const char *figure = "Figure 18";
    const char *caption = "PDDL read response times: fault free, "
                          "reconstruction, and post-reconstruction";
    struct Mode
    {
        const char *name;
        ArrayMode mode;
    };
    const Mode modes[] = {
        {"PDDL (fault free)", ArrayMode::FaultFree},
        {"PDDL reconstruction", ArrayMode::Degraded},
        {"PDDL post-reconstruction", ArrayMode::PostReconstruction},
    };
    const std::vector<int> sizes = {8, 24, 48, 72};

    std::vector<harness::Experiment> experiments;
    for (int kb : sizes) {
        for (const Mode &mode : modes) {
            for (int clients : bench::kClientCounts) {
                harness::Experiment experiment;
                experiment.point = {figure, mode.name, kb, clients,
                                    AccessType::Read, mode.mode};
                experiment.config = bench::defaultSimConfig();
                experiment.config.clients = clients;
                experiment.config.access_units = bench::unitsForKb(kb);
                experiment.config.type = AccessType::Read;
                experiment.config.mode = mode.mode;
                experiment.config.failed_disk = 0;
                experiment.layout = &layout;
                experiment.device = &model;
                experiments.push_back(std::move(experiment));
            }
        }
    }
    harness::RunSummary summary =
        bench::runGrid(figure, caption, experiments);

    std::printf("%s: %s\n", figure, caption);
    std::printf("(cells = mean response ms @ achieved accesses/sec)"
                "\n");
    size_t index = 0;
    for (int kb : sizes) {
        std::printf("\n-- %d KB reads --\n", kb);
        std::printf("%-26s", "mode \\ clients");
        for (int clients : bench::kClientCounts)
            std::printf("  %6d    ", clients);
        std::printf("\n");
        bench::printRule(2 + static_cast<int>(
                                 bench::kClientCounts.size()));
        for (const Mode &mode : modes) {
            std::printf("%-26s", mode.name);
            for (size_t c = 0; c < bench::kClientCounts.size(); ++c) {
                const SimResult &r = summary.points[index++].result;
                std::printf("  %6.1f@%-4.0f", r.mean_response_ms,
                            r.throughput_per_s);
            }
            std::printf("\n");
        }
    }
    std::printf("\nExpected shape: for stripe-unit sized accesses "
                "post-reconstruction is much faster than\n"
                "reconstruction but slower than fault-free (one disk "
                "fewer); for large accesses the two\nfailure modes "
                "converge.\n");
    return 0;
}
