/**
 * @file
 * Figure 4 reproduction: fault-free read seek and no-switch counts
 * per logical access, 8..336 KB.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Figure 4: fault-free read seek/no-switch counts per access");
    bench::runSeekCountFigure("Figure 4",
                              "Fault free read; seek and no-switch "
                              "counts",
                              AccessType::Read, ArrayMode::FaultFree);
    return 0;
}
