/**
 * @file
 * dRAID-scale layout quality: imbalance-vs-n curves and the
 * incremental-evaluator perf story.
 *
 * Sweeps the array size into the hundreds and scores every family
 * the registry can construct there with the ImbalanceEvaluator's
 * worst/mean/RMS rebuild-read imbalance for single- and double-fault
 * cases:
 *
 *  - pddl: the paper's construction (Bose primes, k = 8, one spare);
 *  - draid_random: best of C seeded developed-random-rows maps (the
 *    ZFS dRAID approach), same shapes plus a two-spare family;
 *  - draid_derand: the parallel seeded derandomization search started
 *    from those same C seeds (core/layout_search.hh);
 *  - tdesign: the boolean Steiner quadruple system where
 *    constructible (power-of-two n, k = 4), with a width-matched
 *    draid pair alongside.
 *
 * Every row is a pure function of the grid identity -- scoring walks
 * layout tables and integer tallies, no simulation -- so
 * BENCH_layout_scale.json is byte-identical at every --threads value
 * (deterministic_json strips the host-wall fields). The host-timed
 * perf leg (O(k) incremental swap deltas vs whole-map recompute at
 * n = 258) prints to stderr only and backs --check, which also
 * enforces bit-exact incremental-vs-audit agreement and that
 * derandomization strictly improves the worst-case single-fault
 * imbalance over its best raw seed at every swept n.
 */

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/imbalance.hh"
#include "core/layout_search.hh"
#include "layout/developed_random.hh"
#include "layout/tdesign.hh"
#include "util/rng.hh"

namespace pddl {
namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** Master seed of one swept shape; shared by the draid_random point
 *  and the derandomization baseline so both see the same raw maps. */
uint64_t
shapeSeed(int n, int k, int spares)
{
    return hashMix64(static_cast<uint64_t>(n) << 32 |
                         static_cast<uint64_t>(k) << 16 |
                         static_cast<uint64_t>(spares),
                     0x4c61796f75745363ULL); // "LayoutSc"
}

/** Independent seeded chains per shape (dRAID's "candidate seeds"). */
constexpr int kChains = 4;

/** Search depth: candidate transpositions per chain. */
int64_t
movesFor(int n)
{
    return 24LL * n * n;
}

/** Score one evaluator into the row's extras. */
SimResult
score(const ImbalanceEvaluator &eval, harness::Extras &extras)
{
    const ImbalanceMetrics one = eval.metrics(1);
    const ImbalanceMetrics two = eval.metrics(2);
    extras.emplace_back("disks", eval.disks());
    extras.emplace_back("groups",
                        static_cast<double>(eval.groupCount()));
    extras.emplace_back("cost", static_cast<double>(eval.cost()));
    extras.emplace_back("worst1", one.worst);
    extras.emplace_back("mean1", one.mean);
    extras.emplace_back("rms1", one.rms);
    extras.emplace_back("worst2", two.worst);
    extras.emplace_back("mean2", two.mean);
    extras.emplace_back("rms2", two.rms);
    SimResult result;
    result.samples = one.cases + two.cases;
    return result;
}

/** One swept shape of the draid family. */
struct Shape
{
    int n;
    int k;
    int spares;
};

std::string
seriesLabel(const char *series, const Shape &shape)
{
    return std::string(series) + "/s" +
           std::to_string(shape.spares) + "/n" +
           std::to_string(shape.n);
}

/** draid_random + draid_derand experiments for one shape. */
void
addDraidPoints(std::vector<harness::Experiment> &experiments,
               const Shape &shape)
{
    for (bool derand : {false, true}) {
        harness::Experiment experiment;
        experiment.point = {"LayoutScale",
                            seriesLabel(derand ? "draid_derand"
                                               : "draid_random",
                                        shape),
                            shape.n, shape.spares, AccessType::Read,
                            ArrayMode::Degraded};
        experiment.custom = [shape, derand](uint64_t,
                                            harness::Extras &extras) {
            LayoutSearchOptions opt;
            opt.chains = kChains;
            opt.moves = derand ? movesFor(shape.n) : 0;
            opt.seed = shapeSeed(shape.n, shape.k, shape.spares);
            // Chains ride the intra-scenario lanes; the grid pool
            // already parallelizes across points.
            opt.threads = bench::options().sim_threads;
            LayoutSearchResult search = searchDevelopedRows(
                shape.n, shape.k, shape.spares, shape.n, opt);
            ImbalanceEvaluator eval{search.best};
            SimResult result = score(eval, extras);
            extras.emplace_back("raw_worst1", search.best_raw_worst1);
            extras.emplace_back(
                "raw_cost",
                static_cast<double>(search.best_raw_cost));
            extras.emplace_back("chains", kChains);
            extras.emplace_back("moves",
                                static_cast<double>(opt.moves));
            extras.emplace_back(
                "accepted",
                static_cast<double>(
                    search.chains[search.best_chain].accepted));
            return result;
        };
        experiments.push_back(std::move(experiment));
    }
}

/** Whole-layout scoring experiment (pddl / tdesign curves). */
void
addLayoutPoint(std::vector<harness::Experiment> &experiments,
               const char *series, const Shape &shape,
               std::function<std::unique_ptr<Layout>()> build)
{
    harness::Experiment experiment;
    experiment.point = {"LayoutScale", seriesLabel(series, shape),
                        shape.n, shape.spares, AccessType::Read,
                        ArrayMode::Degraded};
    experiment.custom = [build = std::move(build)](
                            uint64_t, harness::Extras &extras) {
        std::unique_ptr<Layout> layout = build();
        ImbalanceEvaluator eval =
            ImbalanceEvaluator::forLayout(*layout);
        return score(eval, extras);
    };
    experiments.push_back(std::move(experiment));
}

/**
 * The --check perf + exactness leg, measured outside the grid so the
 * JSON rows stay host-independent. @return failures.
 */
int
checkEvaluator(bool enforce)
{
    const int n = 258, k = 8, spares = 2;
    const uint64_t seed = shapeSeed(n, k, spares);
    ImbalanceEvaluator eval(
        randomDevelopedRows(n, k, spares, n, seed));
    int failures = 0;

    // Exactness: a mixed accept/reject random walk must keep the
    // incremental cost bit-identical to the from-scratch audit.
    Rng walk(hashMix64(seed, 0xa0d17));
    for (int step = 0; step < 4000; ++step) {
        const int row = static_cast<int>(
            walk.below(static_cast<uint64_t>(n)));
        const int a =
            static_cast<int>(walk.below(static_cast<uint64_t>(n)));
        int b = static_cast<int>(
            walk.below(static_cast<uint64_t>(n - 1)));
        if (b >= a)
            ++b;
        const int64_t before = eval.cost();
        eval.applySwap(row, a, b);
        if (walk.below(2) == 0 && eval.cost() > before)
            eval.applySwap(row, a, b);
        if (step % 1000 == 999 &&
            eval.cost() != eval.recomputeCost()) {
            std::fprintf(stderr,
                         "[check] FAIL incremental cost %" PRId64
                         " != audit %" PRId64 " after %d steps\n",
                         eval.cost(), eval.recomputeCost(), step + 1);
            ++failures;
        }
    }
    if (eval.cost() != eval.recomputeCost()) {
        std::fprintf(stderr,
                     "[check] FAIL final incremental cost diverged "
                     "from audit\n");
        ++failures;
    }

    // Perf: candidate evaluation via O(k) delta (apply, read cost,
    // revert) vs the O(rows * n * k) whole-map retally every
    // candidate used to pay.
    Rng perf(hashMix64(seed, 0x9e7f));
    int64_t sink = 0;
    const int incr_ops = 200000;
    const auto incr_start = Clock::now();
    for (int op = 0; op < incr_ops; ++op) {
        const int row = static_cast<int>(
            perf.below(static_cast<uint64_t>(n)));
        const int a =
            static_cast<int>(perf.below(static_cast<uint64_t>(n)));
        int b = static_cast<int>(
            perf.below(static_cast<uint64_t>(n - 1)));
        if (b >= a)
            ++b;
        eval.applySwap(row, a, b);
        sink += eval.cost();
        eval.applySwap(row, a, b);
    }
    const double incr_ns =
        secondsSince(incr_start) * 1e9 / incr_ops;

    const int full_ops = 200;
    const auto full_start = Clock::now();
    for (int op = 0; op < full_ops; ++op)
        sink += eval.recomputeCost();
    const double full_ns =
        secondsSince(full_start) * 1e9 / full_ops;

    const double speedup = full_ns / incr_ns;
    std::fprintf(stderr,
                 "[perf] n=%d: incremental candidate %.0f ns, full "
                 "recompute %.0f ns, speedup %.0fx (sink %d)\n",
                 n, incr_ns, full_ns, speedup,
                 static_cast<int>(sink & 0xff));
    if (enforce && speedup < 10.0) {
        std::fprintf(stderr,
                     "[check] FAIL incremental speedup %.1fx below "
                     "10x floor at n=%d\n",
                     speedup, n);
        ++failures;
    }
    return failures;
}

/** Derandomization must strictly beat its best raw seed everywhere. */
int
checkDerandImproves(const harness::RunSummary &summary)
{
    int failures = 0;
    for (const harness::PointResult &point : summary.points) {
        if (point.point.layout.rfind("draid_derand", 0) != 0)
            continue;
        double worst1 = -1.0, raw_worst1 = -1.0;
        for (const auto &[key, value] : point.extras) {
            if (key == "worst1")
                worst1 = value;
            if (key == "raw_worst1")
                raw_worst1 = value;
        }
        if (!(worst1 < raw_worst1)) {
            std::fprintf(stderr,
                         "[check] FAIL %s: derandomized worst1 %.4f "
                         "does not improve on best raw seed %.4f\n",
                         point.point.layout.c_str(), worst1,
                         raw_worst1);
            ++failures;
        }
    }
    if (failures == 0)
        std::fprintf(stderr,
                     "[check] derandomization strictly improves "
                     "worst1 at every swept n\n");
    return failures;
}

} // namespace
} // namespace pddl

int
main(int argc, char **argv)
{
    using namespace pddl;

    bench::BenchCli cli(
        argv[0],
        "dRAID-scale layout quality: single/double-fault rebuild "
        "imbalance vs array size for PDDL, developed-random rows, "
        "derandomized-random and t-design layouts. Rows are exact "
        "integer tallies -- BENCH_layout_scale.json is byte-identical "
        "at every --threads value.");
    cli.addBool("check",
                "verify incremental deltas match the full-recompute "
                "audit bit-for-bit, enforce the 10x candidate-"
                "evaluation speedup at n >= 200, and require "
                "derandomization to strictly improve worst-case "
                "imbalance over the best raw seed at every n");
    cli.parseOrExit(argc, argv);
    // Rows carry no host timing: keep the JSON bit-stable.
    bench::options().deterministic_json = true;

    std::vector<harness::Experiment> experiments;

    // Power-of-two sizes, k = 4: the t-design baseline plus a
    // width-matched unspared draid pair.
    for (int n : {8, 16, 32}) {
        const Shape shape{n, 4, 0};
        addLayoutPoint(experiments, "tdesign", shape, [n] {
            return std::make_unique<TDesignLayout>(n);
        });
        addDraidPoints(experiments, shape);
    }

    // Bose primes (n = 8g + 1), k = 8, one distributed spare: the
    // paper's construction against draid at identical shapes.
    for (int n : {41, 89, 233}) {
        const Shape shape{n, 8, 1};
        addLayoutPoint(experiments, "pddl", shape, [n] {
            return std::make_unique<PddlLayout>(
                PddlLayout::make(n, 8));
        });
        addDraidPoints(experiments, shape);
    }

    // Multiple spares, n into the hundreds: beyond every
    // combinatorial construction in the registry.
    for (int n : {66, 130, 258})
        addDraidPoints(experiments, Shape{n, 8, 2});

    harness::RunSummary summary = bench::runGrid(
        "layout_scale",
        "Rebuild-read imbalance (worst/mean/RMS, single and double "
        "fault) vs array size: PDDL, dRAID developed-random rows, "
        "derandomized-random, t-design",
        experiments);

    std::printf("Layout quality at scale\n");
    std::printf("%-24s %6s %8s %8s %8s %8s %10s\n", "series", "n",
                "worst1", "rms1", "worst2", "rms2", "cost");
    bench::printRule(8);
    for (const harness::PointResult &point : summary.points) {
        double v[5] = {0, 0, 0, 0, 0};
        for (const auto &[key, value] : point.extras) {
            if (key == "worst1")
                v[0] = value;
            else if (key == "rms1")
                v[1] = value;
            else if (key == "worst2")
                v[2] = value;
            else if (key == "rms2")
                v[3] = value;
            else if (key == "cost")
                v[4] = value;
        }
        std::printf("%-24s %6d %8.4f %8.4f %8.4f %8.4f %10.0f\n",
                    point.point.layout.c_str(), point.point.size_kb,
                    v[0], v[1], v[2], v[3], v[4]);
    }

    const bool check = cli.getBool("check");
    int failures = checkEvaluator(check);
    if (check) {
        failures += checkDerandImproves(summary);
        if (failures == 0)
            std::fprintf(stderr, "[check] all layout-scale checks "
                                 "passed\n");
        return failures == 0 ? 0 : 1;
    }
    return 0;
}
