/**
 * @file
 * Self-tuning benchmark: anneal a ScenarioSpec's knob space against
 * the write-heavy SLO scenario and verify the winner generalizes.
 *
 * The baseline is the hand-picked configuration the traffic bench
 * ships (2-shard PDDL volume, write-back tier at the 0.10/0.05
 * watermarks, 8 KB stripe units): src/tune anneals layout family and
 * seed, stripe-unit size, chunk size, placement, SSTF window, cache
 * watermarks/geometry/size (capped at the baseline budget) and
 * rebuild aggressiveness on a *training* workload, then both configs
 * are scored on a *held-out* workload the tuner never saw (shifted
 * write mix, MMPP arrivals, fresh seeds).
 *
 * Rows in BENCH_autotune.json -- baseline/tuned on train/held-out,
 * plus one summary row per annealing chain -- are pure functions of
 * simulated history and fixed protocol seeds, so the file is
 * byte-identical for every --threads value; CI diffs the raw files.
 *
 * --out <file> dumps the winning configuration as a self-contained
 * pddl-autotune-v1 JSON: the full held-out scenario plus the
 * protocol seeds and the recorded objective. --replay <file> re-runs
 * such a dump from the file alone and exits 0 only when the
 * objective reproduces bit-for-bit -- the claim that the scenario
 * API serializes everything that matters.
 *
 * --check enforces the CI floors: the tuned configuration must
 * strictly beat the baseline on the held-out workload, and the
 * dump/parse/re-run loop must reproduce the recorded objective
 * exactly.
 */

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "tune/scenario_runner.hh"
#include "tune/tuner.hh"
#include "util/json.hh"

namespace pddl {
namespace {

/** Protocol seeds: training is what the tuner optimizes against. */
const std::vector<uint64_t> kTrainSeeds = {0x7e57a1u};
const std::vector<uint64_t> kHoldoutSeeds = {0xAB5EEDu, 0xAB5EEEu};

/**
 * The hand-picked default the traffic bench's SLO panel runs: the
 * zipf write-heavy scenario over the cached 2-shard PDDL volume.
 */
ScenarioSpec
baselineSpec()
{
    ScenarioSpec spec;
    spec.shards.assign(2, ScenarioShard{});
    spec.chunk_units = 8;
    spec.dispatch_ms = 2.0;
    spec.arrivals_per_s = 100.0;
    spec.offsets = "zipf:0.99";
    // Training traffic is moderately bursty: knobs that only matter
    // under load spikes (watermarks, destage width) are invisible
    // under pure Poisson, and the held-out workload bursts harder.
    spec.arrival = "mmpp:4,1200,400";
    spec.mix = {{8, true, 0.60},
                {32, true, 0.10},
                {8, false, 0.25},
                {32, false, 0.05}};
    spec.cache_enabled = true;
    // The traffic bench's tier: 4096 lines of 8 KB = 32 MB, tight
    // 0.10/0.05 watermarks.
    spec.cache_kb = 32768;
    spec.cache_high = 0.10;
    spec.cache_low = 0.05;
    spec.samples = bench::fullFidelity() ? 4000 : 1200;
    spec.warmup = bench::fullFidelity() ? 1500 : 600;
    std::string error;
    if (!spec.normalize(error)) {
        std::fprintf(stderr, "baseline spec invalid: %s\n",
                     error.c_str());
        std::exit(2);
    }
    return spec;
}

/**
 * The held-out workload: same volume and tier question, but a
 * shifted write mix, bursty MMPP arrivals and fresh seeds -- knobs
 * that only overfit the training run do not survive this.
 */
ScenarioSpec
holdoutVariant(const ScenarioSpec &spec)
{
    ScenarioSpec held = spec;
    held.mix = {{8, true, 0.55},
                {32, true, 0.15},
                {8, false, 0.25},
                {32, false, 0.05}};
    held.arrival = "mmpp:6,1500,500";
    held.samples = bench::fullFidelity() ? 4000 : 1600;
    held.warmup = bench::fullFidelity() ? 1500 : 600;
    std::string error;
    if (!held.normalize(error)) {
        std::fprintf(stderr, "held-out spec invalid: %s\n",
                     error.c_str());
        std::exit(2);
    }
    return held;
}

/** Score a spec on the held-out protocol (spec carries its budget). */
double
holdoutObjective(const ScenarioSpec &spec, tune::Objective objective)
{
    return tune::evaluateScenario(holdoutVariant(spec), kHoldoutSeeds,
                                  objective, 0, -1,
                                  bench::options().sim_threads);
}

/** The pddl-autotune-v1 winner document (self-contained replay). */
Json
winnerJson(const ScenarioSpec &tuned, tune::Objective objective,
           double tuned_holdout, double baseline_holdout,
           double tuned_train, double baseline_train)
{
    Json seeds = Json::array();
    for (uint64_t seed : kHoldoutSeeds)
        seeds.push(Json(static_cast<int64_t>(seed)));
    Json doc = Json::object();
    doc.set("schema", "pddl-autotune-v1")
        .set("objective", tune::objectiveName(objective))
        .set("seeds", std::move(seeds))
        .set("objective_value", tuned_holdout)
        .set("baseline_value", baseline_holdout)
        .set("train_value", tuned_train)
        .set("baseline_train_value", baseline_train)
        // The full held-out scenario, budget included: --replay
        // needs nothing but this file.
        .set("scenario", holdoutVariant(tuned).toJson());
    return doc;
}

/**
 * Re-run a pddl-autotune-v1 dump from the file alone and compare the
 * objective bit-for-bit. @return process exit code.
 */
int
replayWinner(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "[replay] cannot read %s\n",
                     path.c_str());
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    Json doc;
    std::string error;
    if (!Json::parse(text.str(), doc, error)) {
        std::fprintf(stderr, "[replay] %s: %s\n", path.c_str(),
                     error.c_str());
        return 2;
    }
    const Json *schema = doc.find("schema");
    if (schema == nullptr || !schema->isString() ||
        schema->asString() != "pddl-autotune-v1") {
        std::fprintf(stderr,
                     "[replay] %s: not a pddl-autotune-v1 document\n",
                     path.c_str());
        return 2;
    }
    const Json *scenario = doc.find("scenario");
    const Json *seeds = doc.find("seeds");
    const Json *objective_name = doc.find("objective");
    const Json *recorded = doc.find("objective_value");
    if (scenario == nullptr || seeds == nullptr ||
        !seeds->isArray() || objective_name == nullptr ||
        !objective_name->isString() || recorded == nullptr ||
        !recorded->isNumber()) {
        std::fprintf(stderr,
                     "[replay] %s: missing scenario/seeds/objective "
                     "fields\n",
                     path.c_str());
        return 2;
    }
    ScenarioSpec spec;
    if (!ScenarioSpec::fromJson(*scenario, spec, error)) {
        std::fprintf(stderr, "[replay] %s: scenario: %s\n",
                     path.c_str(), error.c_str());
        return 2;
    }
    tune::Objective objective;
    if (!tune::parseObjective(objective_name->asString(), objective,
                              error)) {
        std::fprintf(stderr, "[replay] %s: objective: %s\n",
                     path.c_str(), error.c_str());
        return 2;
    }
    std::vector<uint64_t> seed_list;
    for (size_t i = 0; i < seeds->size(); ++i)
        seed_list.push_back(
            static_cast<uint64_t>(seeds->at(i).asInt()));

    const double replayed = tune::evaluateScenario(
        spec, seed_list, objective, 0, -1,
        bench::options().sim_threads);
    const double want = recorded->asDouble();
    const bool match = replayed == want;
    std::printf("replay objective %.17g recorded %.17g %s\n",
                replayed, want, match ? "MATCH" : "MISMATCH");
    return match ? 0 : 1;
}

double
extra(const harness::PointResult &point, const char *key)
{
    for (const auto &[name, value] : point.extras) {
        if (name == key)
            return value;
    }
    return 0.0;
}

/** One evaluated row: simulate with the row's protocol seed. */
SimResult
scenarioRow(const ScenarioSpec &spec, uint64_t seed,
            tune::Objective objective, harness::Extras &extras)
{
    tune::RunScenarioOptions options;
    options.seed = seed;
    options.sim_threads = bench::options().sim_threads;
    const tune::ScenarioOutcome outcome =
        tune::runScenario(spec, options);
    extras.emplace_back("objective",
                        tune::objectiveOf(outcome, objective));
    extras.emplace_back("p50_ms", outcome.p50_ms);
    extras.emplace_back("p95_ms", outcome.p95_ms);
    extras.emplace_back("p99_ms", outcome.p99_ms);
    extras.emplace_back("p999_ms", outcome.p999_ms);
    extras.emplace_back("hit_rate", outcome.hit_rate);
    extras.emplace_back("write_stalls",
                        static_cast<double>(outcome.write_stalls));
    extras.emplace_back("stalled_end",
                        static_cast<double>(outcome.stalled_end));
    extras.emplace_back("data_loss", outcome.data_loss ? 1.0 : 0.0);
    extras.emplace_back("max_outstanding", outcome.max_outstanding);
    SimResult result;
    result.mean_response_ms = outcome.mean_ms;
    result.throughput_per_s = outcome.throughput_per_s;
    result.samples = outcome.samples;
    return result;
}

} // namespace
} // namespace pddl

int
main(int argc, char **argv)
{
    using namespace pddl;

    bench::BenchCli cli(
        argv[0],
        "Self-tuning scenario search: anneal layout, striping, "
        "placement and cache knobs from the hand-picked traffic "
        "defaults, then verify the winner on a held-out workload "
        "(rows are bit-identical for every --threads value).");
    cli.addInt("chains", "n", "independent annealing chains", 1);
    cli.addInt("moves", "n", "mutation attempts per chain", 1);
    cli.addString("objective", "kind",
                  "what the tuner minimizes: p99 (default), p999, "
                  "p95 or mean",
                  [](const std::string &value) {
                      tune::Objective objective;
                      std::string error;
                      return tune::parseObjective(value, objective,
                                                  error)
                                 ? std::string()
                                 : error;
                  });
    cli.addString("out", "file",
                  "dump the winning configuration as a "
                  "self-contained pddl-autotune-v1 JSON");
    cli.addString("replay", "file",
                  "re-run a pddl-autotune-v1 dump from the file "
                  "alone and require the recorded objective to "
                  "reproduce bit-for-bit");
    cli.addBool("check",
                "enforce CI floors (tuned strictly beats the "
                "baseline on the held-out workload; dump/parse/"
                "re-run reproduces the recorded objective exactly) "
                "and exit 1 on regression");
    cli.parseOrExit(argc, argv);
    bench::options().deterministic_json = true;

    if (cli.has("replay"))
        return replayWinner(cli.getString("replay"));

    tune::Objective objective = tune::Objective::P99;
    if (cli.has("objective")) {
        std::string error;
        tune::parseObjective(cli.getString("objective"), objective,
                             error);
    }

    const ScenarioSpec baseline = baselineSpec();

    tune::TuneOptions toptions;
    toptions.chains = static_cast<int>(cli.getInt("chains", 4));
    toptions.moves = static_cast<int>(
        cli.getInt("moves", bench::fullFidelity() ? 16 : 10));
    toptions.seed = 0xA070u;
    toptions.threads = bench::options().threads;
    toptions.sim_threads = bench::options().sim_threads;
    toptions.objective = objective;
    toptions.eval_seeds = kTrainSeeds;

    const tune::TuneResult tuned = tune::tune(baseline, toptions);

    const double baseline_holdout =
        holdoutObjective(baseline, objective);
    const double tuned_holdout =
        holdoutObjective(tuned.best, objective);

    // The JSON rows: train and held-out panels for both configs
    // (fixed protocol seeds, never the harness seed), plus one
    // summary row per chain. Everything is simulated or derived
    // from the deterministic search, so the file is byte-identical
    // across --threads.
    std::vector<harness::Experiment> experiments;
    struct Row
    {
        std::string label;
        const ScenarioSpec *spec;
        bool holdout;
    };
    const ScenarioSpec baseline_held = holdoutVariant(baseline);
    const ScenarioSpec tuned_held = holdoutVariant(tuned.best);
    const std::vector<Row> rows = {
        {"baseline/train", &baseline, false},
        {"tuned/train", &tuned.best, false},
        {"baseline/holdout", &baseline_held, true},
        {"tuned/holdout", &tuned_held, true},
    };
    for (const Row &row : rows) {
        harness::Experiment experiment;
        experiment.point = {"Autotune", row.label, 8, 100,
                            AccessType::Write, ArrayMode::FaultFree};
        const uint64_t seed =
            row.holdout ? kHoldoutSeeds[0] : kTrainSeeds[0];
        const ScenarioSpec *spec = row.spec;
        experiment.custom = [spec, seed, objective](
                                uint64_t, harness::Extras &extras) {
            return scenarioRow(*spec, seed, objective, extras);
        };
        experiments.push_back(std::move(experiment));
    }
    for (const tune::TuneChain &chain : tuned.chains) {
        harness::Experiment experiment;
        experiment.point = {"Autotune",
                            "chain/" + std::to_string(chain.chain), 8,
                            100, AccessType::Write,
                            ArrayMode::FaultFree};
        const tune::TuneChain *stats = &chain;
        experiment.custom = [stats](uint64_t,
                                    harness::Extras &extras) {
            extras.emplace_back("best_objective",
                                stats->best_objective);
            extras.emplace_back("evaluated", stats->evaluated);
            extras.emplace_back("memo_hits", stats->memo_hits);
            extras.emplace_back("accepted", stats->accepted);
            extras.emplace_back("surrogate_rejects",
                                stats->surrogate_rejects);
            extras.emplace_back("invalid_moves",
                                stats->invalid_moves);
            return SimResult{};
        };
        experiments.push_back(std::move(experiment));
    }

    harness::RunSummary summary = bench::runGrid(
        "Autotune",
        "Annealed configuration search vs the hand-picked default: "
        "training and held-out objectives (lower is better)",
        experiments);

    std::printf("Autotune (%s objective, %d chains x %d moves, %d "
                "evaluations)\n",
                tune::objectiveName(objective), toptions.chains,
                toptions.moves, tuned.evaluations);
    std::printf("%-20s %12s %10s %10s %10s %8s\n", "config",
                "objective", "p99", "mean", "hit", "stalls");
    bench::printRule(8);
    for (const harness::PointResult &point : summary.points) {
        if (point.point.layout.rfind("chain/", 0) == 0)
            continue;
        std::printf("%-20s %12.3f %10.2f %10.2f %10.3f %8.0f\n",
                    point.point.layout.c_str(),
                    extra(point, "objective"), extra(point, "p99_ms"),
                    point.result.mean_response_ms,
                    extra(point, "hit_rate"),
                    extra(point, "write_stalls"));
    }
    std::printf("\ntuned scenario: %s\n",
                tuned.best.describe().c_str());
    std::printf("train: baseline %.3f -> tuned %.3f; held-out: "
                "baseline %.3f -> tuned %.3f\n",
                tuned.baseline_objective, tuned.best_objective,
                baseline_holdout, tuned_holdout);

    const Json winner =
        winnerJson(tuned.best, objective, tuned_holdout,
                   baseline_holdout, tuned.best_objective,
                   tuned.baseline_objective);
    if (cli.has("out")) {
        const std::string path = cli.getString("out");
        std::ofstream out(path, std::ios::trunc);
        if (out) {
            out << winner.dump(2);
            std::fprintf(stderr, "[Autotune] wrote %s\n",
                         path.c_str());
        } else {
            std::fprintf(stderr, "[Autotune] cannot write %s\n",
                         path.c_str());
            return 2;
        }
    }

    if (cli.getBool("check")) {
        int failures = 0;
        if (!(tuned_holdout < baseline_holdout)) {
            std::fprintf(stderr,
                         "[check] FAIL held-out: tuned %.3f does not "
                         "beat baseline %.3f\n",
                         tuned_holdout, baseline_holdout);
            ++failures;
        } else {
            std::fprintf(stderr,
                         "[check] held-out: tuned %.3f beats "
                         "baseline %.3f\n",
                         tuned_holdout, baseline_holdout);
        }
        // The serialization loop: dump -> parse -> re-run must land
        // on the recorded objective bit-for-bit, from the document
        // alone.
        const std::string text = winner.dump(2);
        Json parsed;
        std::string error;
        ScenarioSpec replay_spec;
        double replayed =
            std::numeric_limits<double>::quiet_NaN();
        if (Json::parse(text, parsed, error) &&
            parsed.find("scenario") != nullptr &&
            ScenarioSpec::fromJson(*parsed.find("scenario"),
                                   replay_spec, error)) {
            replayed = tune::evaluateScenario(
                replay_spec, kHoldoutSeeds, objective, 0, -1,
                bench::options().sim_threads);
        } else {
            std::fprintf(stderr, "[check] FAIL round-trip: %s\n",
                         error.c_str());
            ++failures;
        }
        if (replayed == tuned_holdout) {
            std::fprintf(stderr,
                         "[check] replay from JSON reproduces "
                         "%.17g\n",
                         replayed);
        } else {
            std::fprintf(stderr,
                         "[check] FAIL replay: %.17g != recorded "
                         "%.17g\n",
                         replayed, tuned_holdout);
            ++failures;
        }
        if (failures == 0)
            std::fprintf(stderr, "[check] all autotune floors met\n");
        return failures == 0 ? 0 : 1;
    }
    return 0;
}
