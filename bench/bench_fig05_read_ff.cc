/**
 * @file
 * Figure 5 reproduction: failure-free read response times for
 * 8..240 KB accesses across the evaluated layouts.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Figure 5: fault-free read response times, 8-240 KB");
    bench::runResponseTimeFigure(
        "Figure 5", "Read response times, failure-free mode",
        {8, 48, 96, 144, 192, 240}, AccessType::Read,
        ArrayMode::FaultFree);
    return 0;
}
