/**
 * @file
 * Scale-out benchmark: one volume striped over S independent PDDL
 * arrays, swept over shard counts {1, 2, 4, 8}.
 *
 * Each row runs a closed-loop client population (8 clients per
 * shard, 24 KB accesses) against a VolumeManager on the parallel
 * engine and reports simulated rates only -- requests per simulated
 * second and engine events per simulated second -- so
 * BENCH_scaleout.json is bit-identical for every --threads AND
 * every --sim-threads value (host wall time never enters a row, and
 * the engine's windows are a pure function of simulation state).
 * The fault rows additionally play a scripted disk-failure timeline
 * against shard 0, measuring how one rebuilding shard's spillover
 * shows up against the healthy remainder (degraded sub-access
 * share, rebuild completion).
 *
 * --speedup (implied by --check) adds the wall-clock rows: one big
 * 64-shard volume run at 1, 2 and 4 intra-scenario threads, same
 * simulated history at every count, host wall time printed per row
 * (stdout only -- wall time never reaches the JSON).
 *
 * --check enforces the scale-out acceptance floors in CI: the
 * 4-shard healthy row must deliver at least 3x the 1-shard
 * aggregate request rate, no fault row may end in data loss, and --
 * on hosts with at least 4 hardware threads -- the 64-shard volume
 * must run at least 3x faster at 4 intra-scenario threads.
 */

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "fault/fault_scheduler.hh"
#include "sim/parallel_engine.hh"
#include "volume/volume_manager.hh"

namespace pddl {
namespace {

const std::vector<int> kShardCounts = {1, 2, 4, 8};

/** Clients per shard: the offered concurrency scales with capacity. */
constexpr int kClientsPerShard = 8;

/**
 * Volume->shard dispatch latency, and therefore the engine's
 * conservative window width (lookahead). Two milliseconds keeps
 * tens of disk events per lane inside each window at this bench's
 * load, so barrier overhead stays in the noise.
 */
constexpr double kDispatchMs = 2.0;

/**
 * One scale-out point: a volume of `shard_count` PDDL shards under a
 * closed-loop population, optionally with a scripted disk failure on
 * shard 0. Fixed sample count (min == max, zero tolerance) pins the
 * simulated work so rates compare cleanly across shard counts. Runs
 * on the parallel engine with --sim-threads workers; every reported
 * number is identical at every worker count.
 */
SimResult
runScaleout(int shard_count, bool faulted, uint64_t seed,
            harness::Extras &extras)
{
    ParallelEngine::Config engine_config;
    engine_config.threads = bench::options().sim_threads;
    engine_config.lookahead = kDispatchMs;
    ParallelEngine engine(shard_count, engine_config);

    PddlLayout layout = PddlLayout::make(13, 4);
    const DeviceModel &model = device::hp2247();

    std::vector<ShardSpec> specs(static_cast<size_t>(shard_count));
    for (ShardSpec &spec : specs) {
        spec.layout = &layout;
        spec.device = &model;
    }
    VolumeConfig vconfig;
    vconfig.chunk_units = 8;
    vconfig.dispatch_ms = kDispatchMs;
    VolumeManager volume(engine, std::move(specs), vconfig);

    // Per-shard fault injection: shard 0 loses disk 2 early in the
    // run and rebuilds into its distributed spare while the other
    // shards keep serving at full speed. The scheduler lives on
    // shard 0's lane: all of its machinery is shard-local.
    std::unique_ptr<FaultScheduler> faults;
    if (faulted) {
        FaultSchedule schedule;
        schedule.events.push_back(
            {40.0, FaultEvent::Kind::DiskFailure, 2, 0});
        faults = std::make_unique<FaultScheduler>(
            engine.shardQueue(0), std::move(schedule),
            FaultScheduler::Options{});
        faults->bindArray(volume.shard(0));
        faults->start();
    }

    ClosedLoopConfig config;
    config.clients = kClientsPerShard * shard_count;
    config.access_units = 3; // 24 KB: mixes chunk-local + split ops
    config.type = AccessType::Read;
    config.relative_tolerance = 0.0;
    config.min_samples = bench::fullFidelity() ? 12000 : 3000;
    config.max_samples = config.min_samples;
    config.warmup = 200;
    config.seed = seed;

    ClosedLoopClient client(config);
    startOnHub(client, engine, volume);
    engine.run();

    SimResult result = client.result();

    // Simulated rates only: host wall time must never reach a row,
    // or the JSON would stop being bit-identical across --threads
    // and --sim-threads.
    const double sim_s = engine.now() / 1000.0;
    extras.emplace_back("shards", shard_count);
    extras.emplace_back("req_per_s", result.throughput_per_s);
    extras.emplace_back("events_per_sim_s",
                        static_cast<double>(engine.eventsFired()) /
                            sim_s);
    extras.emplace_back("windows_per_sim_s",
                        static_cast<double>(engine.windowsRun()) /
                            sim_s);
    extras.emplace_back(
        "sub_per_access",
        static_cast<double>(volume.subAccessesIssued()) /
            static_cast<double>(volume.volumeAccessesIssued()));
    int max_depth = 0;
    for (int s = 0; s < volume.shardCount(); ++s)
        max_depth = std::max(max_depth, volume.maxInFlight(s));
    extras.emplace_back("max_in_flight", max_depth);
    extras.emplace_back("degraded_shards_end", volume.degradedShards());
    if (faulted) {
        const FaultStats &stats = faults->stats();
        extras.emplace_back("rebuilds_completed",
                            stats.rebuilds_completed);
        extras.emplace_back("data_loss", stats.data_loss ? 1.0 : 0.0);
        extras.emplace_back("degraded_ms", faults->degradedMs());
    }
    return result;
}

/**
 * The wall-clock scenario: a 64-shard volume under a heavy
 * closed-loop population of large accesses (each sub-access expands
 * to a whole chunk of disk ops), so nearly all event work lives on
 * the shard lanes and the windows stay dense. Returns the host wall
 * milliseconds of engine.run(); the simulated outcome is checked
 * identical across thread counts by the caller.
 */
struct WallRun
{
    double wall_ms = 0.0;
    uint64_t events = 0;
    double sim_ms = 0.0;
    double mean_response_ms = 0.0;
    int64_t samples = 0;
};

WallRun
runWallScenario(int shard_count, int sim_threads)
{
    ParallelEngine::Config engine_config;
    engine_config.threads = sim_threads;
    engine_config.lookahead = kDispatchMs;
    ParallelEngine engine(shard_count, engine_config);

    PddlLayout layout = PddlLayout::make(13, 4);
    const DeviceModel &model = device::hp2247();
    std::vector<ShardSpec> specs(static_cast<size_t>(shard_count));
    for (ShardSpec &spec : specs) {
        spec.layout = &layout;
        spec.device = &model;
    }
    VolumeConfig vconfig;
    vconfig.chunk_units = 8;
    vconfig.dispatch_ms = kDispatchMs;
    VolumeManager volume(engine, std::move(specs), vconfig);

    ClosedLoopConfig config;
    config.clients = 16 * shard_count;
    config.access_units = 8; // one whole chunk: 8 disk ops per sub
    config.type = AccessType::Read;
    config.relative_tolerance = 0.0;
    config.min_samples = bench::fullFidelity() ? 40000 : 12000;
    config.max_samples = config.min_samples;
    config.warmup = 500;
    config.seed = 0x5ca1ab1eULL;

    ClosedLoopClient client(config);
    startOnHub(client, engine, volume);

    const auto start = std::chrono::steady_clock::now();
    engine.run();
    const auto stop = std::chrono::steady_clock::now();

    WallRun run;
    run.wall_ms =
        std::chrono::duration<double, std::milli>(stop - start)
            .count();
    run.events = engine.eventsFired();
    run.sim_ms = engine.now();
    run.mean_response_ms = client.result().mean_response_ms;
    run.samples = client.result().samples;
    return run;
}

/**
 * Print the wall-clock speedup rows (stdout only, never JSON) and
 * return the per-thread-count results for floor checking.
 */
std::map<int, WallRun>
runSpeedupRows(int shard_count)
{
    std::map<int, WallRun> runs;
    std::printf("\n64-shard wall-clock speedup (host time; identical "
                "simulated history per row)\n");
    std::printf("%12s %10s %12s %12s %10s %9s\n", "sim-threads",
                "wall ms", "events", "Mev/s-wall", "speedup",
                "resp ms");
    bench::printRule(7);
    double base_ms = 0.0;
    for (int threads : {1, 2, 4}) {
        WallRun run = runWallScenario(shard_count, threads);
        if (threads == 1)
            base_ms = run.wall_ms;
        std::printf("%12d %10.0f %12llu %12.2f %9.2fx %9.2f\n",
                    threads, run.wall_ms,
                    static_cast<unsigned long long>(run.events),
                    static_cast<double>(run.events) / 1e3 /
                        run.wall_ms,
                    base_ms / run.wall_ms, run.mean_response_ms);
        runs[threads] = run;
    }
    return runs;
}

double
extra(const harness::PointResult &point, const char *key)
{
    for (const auto &[name, value] : point.extras) {
        if (name == key)
            return value;
    }
    return 0.0;
}

/** Enforce the scale-out acceptance floors. @return exit code. */
int
checkFloors(const harness::RunSummary &summary,
            const std::map<int, WallRun> &wall_runs)
{
    int failures = 0;
    std::map<int, double> healthy_req_per_s;
    for (const harness::PointResult &point : summary.points) {
        const int shards = static_cast<int>(extra(point, "shards"));
        const bool faulted = point.point.mode != ArrayMode::FaultFree;
        if (!faulted) {
            healthy_req_per_s[shards] = extra(point, "req_per_s");
            continue;
        }
        if (extra(point, "data_loss") != 0.0) {
            std::fprintf(stderr,
                         "[check] FAIL %d shards: single failure "
                         "ended in data loss\n",
                         shards);
            ++failures;
        }
        if (extra(point, "rebuilds_completed") < 1.0) {
            std::fprintf(stderr,
                         "[check] FAIL %d shards: rebuild never "
                         "completed\n",
                         shards);
            ++failures;
        }
    }
    const double base = healthy_req_per_s[1];
    const double four = healthy_req_per_s[4];
    if (base <= 0.0 || four < 3.0 * base) {
        std::fprintf(stderr,
                     "[check] FAIL scale-out: 4-shard %.0f req/s is "
                     "below 3x the 1-shard %.0f req/s\n",
                     four, base);
        ++failures;
    } else {
        std::fprintf(stderr,
                     "[check] 4-shard scale-out %.2fx the 1-shard "
                     "rate\n",
                     four / base);
    }

    // Wall-clock floor: the 64-shard volume must run >= 3x faster
    // at 4 intra-scenario threads. Host-dependent by nature, so it
    // only binds where 4 hardware threads exist to run on.
    const auto one = wall_runs.find(1);
    const auto fourt = wall_runs.find(4);
    if (one != wall_runs.end() && fourt != wall_runs.end()) {
        if (one->second.events != fourt->second.events ||
            one->second.sim_ms != fourt->second.sim_ms ||
            one->second.mean_response_ms !=
                fourt->second.mean_response_ms) {
            std::fprintf(stderr,
                         "[check] FAIL speedup rows: simulated "
                         "history differs across thread counts\n");
            ++failures;
        }
        const double speedup =
            one->second.wall_ms / fourt->second.wall_ms;
        if (std::thread::hardware_concurrency() < 4) {
            std::fprintf(stderr,
                         "[check] SKIP wall-clock floor: host has "
                         "%u hardware threads (< 4); measured "
                         "%.2fx\n",
                         std::thread::hardware_concurrency(),
                         speedup);
        } else if (speedup < 3.0) {
            std::fprintf(stderr,
                         "[check] FAIL wall-clock: 64-shard volume "
                         "at 4 sim-threads is %.2fx the serial "
                         "engine (floor 3x)\n",
                         speedup);
            ++failures;
        } else {
            std::fprintf(stderr,
                         "[check] 64-shard wall-clock speedup "
                         "%.2fx at 4 sim-threads\n",
                         speedup);
        }
    }
    if (failures == 0)
        std::fprintf(stderr, "[check] all scale-out floors met\n");
    return failures == 0 ? 0 : 1;
}

} // namespace
} // namespace pddl

int
main(int argc, char **argv)
{
    using namespace pddl;

    bench::BenchCli cli(
        argv[0],
        "Scale-out benchmark: request and event rates of one volume "
        "striped over 1/2/4/8 PDDL shards, healthy and with a "
        "single-shard disk failure (simulated rates; rows are "
        "bit-identical for every --threads and --sim-threads "
        "value).");
    cli.addBool("check",
                "enforce CI floors (4-shard >= 3x 1-shard req/s, "
                "fault rows rebuild without data loss, 64-shard "
                ">= 3x wall speedup at 4 sim-threads) and exit 1 "
                "on regression");
    cli.addBool("speedup",
                "also run the 64-shard wall-clock speedup rows at "
                "1/2/4 intra-scenario threads");
    cli.parseOrExit(argc, argv);
    // Every row is a simulated rate: strip the informational host
    // wall fields so BENCH_scaleout.json is byte-identical for any
    // --threads value and CI can diff the raw files.
    bench::options().deterministic_json = true;

    std::vector<harness::Experiment> experiments;
    for (int shards : kShardCounts) {
        for (bool faulted : {false, true}) {
            harness::Experiment experiment;
            experiment.point = {"Scaleout",
                                std::string("volume/") +
                                    (faulted ? "shard0_failure"
                                             : "healthy"),
                                24, kClientsPerShard * shards,
                                AccessType::Read,
                                faulted ? ArrayMode::Degraded
                                        : ArrayMode::FaultFree};
            experiment.custom = [shards, faulted](
                                    uint64_t seed,
                                    harness::Extras &extras) {
                return runScaleout(shards, faulted, seed, extras);
            };
            experiments.push_back(std::move(experiment));
        }
    }

    harness::RunSummary summary = bench::runGrid(
        "Scaleout",
        "Volume scale-out: req/s and events/s vs shard count, "
        "healthy and with one shard rebuilding (simulated rates)",
        experiments);

    std::printf("Volume scale-out (%d clients per shard, 24 KB "
                "reads, %d sim-thread(s))\n",
                kClientsPerShard, bench::options().sim_threads);
    std::printf("%7s %16s %12s %14s %9s %9s %10s\n", "shards",
                "scenario", "req/s", "events/sim-s", "resp ms",
                "sub/acc", "max depth");
    bench::printRule(8);
    for (const harness::PointResult &point : summary.points) {
        std::printf("%7d %16s %12.0f %14.0f %9.2f %9.3f %10.0f\n",
                    static_cast<int>(extra(point, "shards")),
                    point.point.mode == ArrayMode::FaultFree
                        ? "healthy"
                        : "shard0 failure",
                    extra(point, "req_per_s"),
                    extra(point, "events_per_sim_s"),
                    point.result.mean_response_ms,
                    extra(point, "sub_per_access"),
                    extra(point, "max_in_flight"));
    }

    std::map<int, WallRun> wall_runs;
    if (cli.getBool("check") || cli.getBool("speedup"))
        wall_runs = runSpeedupRows(64);

    if (cli.getBool("check"))
        return checkFloors(summary, wall_runs);
    return 0;
}
