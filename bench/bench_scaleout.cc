/**
 * @file
 * Scale-out benchmark: one volume striped over S independent PDDL
 * arrays, swept over shard counts {1, 2, 4, 8}.
 *
 * Each row runs a closed-loop client population (8 clients per
 * shard, 24 KB accesses) against a VolumeManager and reports
 * simulated rates only -- requests per simulated second and engine
 * events per simulated second -- so BENCH_scaleout.json is
 * bit-identical for every --threads value (host wall time never
 * enters a row). The fault rows additionally play a scripted
 * disk-failure timeline against shard 0, measuring how one
 * rebuilding shard's spillover shows up against the healthy
 * remainder (degraded sub-access share, rebuild completion).
 *
 * --check enforces the scale-out acceptance floors in CI: the
 * 4-shard healthy row must deliver at least 3x the 1-shard
 * aggregate request rate, and no fault row may end in data loss.
 */

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench_util.hh"
#include "fault/fault_scheduler.hh"
#include "volume/volume_manager.hh"

namespace pddl {
namespace {

const std::vector<int> kShardCounts = {1, 2, 4, 8};

/** Clients per shard: the offered concurrency scales with capacity. */
constexpr int kClientsPerShard = 8;

/**
 * One scale-out point: a volume of `shard_count` PDDL shards under a
 * closed-loop population, optionally with a scripted disk failure on
 * shard 0. Fixed sample count (min == max, zero tolerance) pins the
 * simulated work so rates compare cleanly across shard counts.
 */
SimResult
runScaleout(int shard_count, bool faulted, uint64_t seed,
            harness::Extras &extras)
{
    EventQueue events;
    PddlLayout layout = PddlLayout::make(13, 4);
    DiskModel model = DiskModel::hp2247();

    std::vector<ShardSpec> specs(static_cast<size_t>(shard_count));
    for (ShardSpec &spec : specs) {
        spec.layout = &layout;
        spec.model = &model;
    }
    VolumeConfig vconfig;
    vconfig.chunk_units = 8;
    VolumeManager volume(events, std::move(specs), vconfig);

    // Per-shard fault injection: shard 0 loses disk 2 early in the
    // run and rebuilds into its distributed spare while the other
    // shards keep serving at full speed.
    std::unique_ptr<FaultScheduler> faults;
    if (faulted) {
        FaultSchedule schedule;
        schedule.events.push_back(
            {40.0, FaultEvent::Kind::DiskFailure, 2, 0});
        faults = std::make_unique<FaultScheduler>(
            events, std::move(schedule), FaultScheduler::Options{});
        faults->bindArray(volume.shard(0));
        faults->start();
    }

    ClosedLoopConfig config;
    config.clients = kClientsPerShard * shard_count;
    config.access_units = 3; // 24 KB: mixes chunk-local + split ops
    config.type = AccessType::Read;
    config.relative_tolerance = 0.0;
    config.min_samples = bench::fullFidelity() ? 12000 : 3000;
    config.max_samples = config.min_samples;
    config.warmup = 200;
    config.seed = seed;

    ClosedLoopClient client(config);
    client.start(events, volume);
    events.runUntilEmpty();

    SimResult result = client.result();

    // Simulated rates only: host wall time must never reach a row,
    // or the JSON would stop being bit-identical across --threads.
    const double sim_s = events.now() / 1000.0;
    extras.emplace_back("shards", shard_count);
    extras.emplace_back("req_per_s", result.throughput_per_s);
    extras.emplace_back("events_per_sim_s",
                        static_cast<double>(events.fired()) / sim_s);
    extras.emplace_back(
        "sub_per_access",
        static_cast<double>(volume.subAccessesIssued()) /
            static_cast<double>(volume.volumeAccessesIssued()));
    int max_depth = 0;
    for (int s = 0; s < volume.shardCount(); ++s)
        max_depth = std::max(max_depth, volume.maxInFlight(s));
    extras.emplace_back("max_in_flight", max_depth);
    extras.emplace_back("degraded_shards_end", volume.degradedShards());
    if (faulted) {
        const FaultStats &stats = faults->stats();
        extras.emplace_back("rebuilds_completed",
                            stats.rebuilds_completed);
        extras.emplace_back("data_loss", stats.data_loss ? 1.0 : 0.0);
        extras.emplace_back("degraded_ms", faults->degradedMs());
    }
    return result;
}

double
extra(const harness::PointResult &point, const char *key)
{
    for (const auto &[name, value] : point.extras) {
        if (name == key)
            return value;
    }
    return 0.0;
}

/** Enforce the scale-out acceptance floors. @return exit code. */
int
checkFloors(const harness::RunSummary &summary)
{
    int failures = 0;
    std::map<int, double> healthy_req_per_s;
    for (const harness::PointResult &point : summary.points) {
        const int shards = static_cast<int>(extra(point, "shards"));
        const bool faulted = point.point.mode != ArrayMode::FaultFree;
        if (!faulted) {
            healthy_req_per_s[shards] = extra(point, "req_per_s");
            continue;
        }
        if (extra(point, "data_loss") != 0.0) {
            std::fprintf(stderr,
                         "[check] FAIL %d shards: single failure "
                         "ended in data loss\n",
                         shards);
            ++failures;
        }
        if (extra(point, "rebuilds_completed") < 1.0) {
            std::fprintf(stderr,
                         "[check] FAIL %d shards: rebuild never "
                         "completed\n",
                         shards);
            ++failures;
        }
    }
    const double base = healthy_req_per_s[1];
    const double four = healthy_req_per_s[4];
    if (base <= 0.0 || four < 3.0 * base) {
        std::fprintf(stderr,
                     "[check] FAIL scale-out: 4-shard %.0f req/s is "
                     "below 3x the 1-shard %.0f req/s\n",
                     four, base);
        ++failures;
    } else {
        std::fprintf(stderr,
                     "[check] 4-shard scale-out %.2fx the 1-shard "
                     "rate\n",
                     four / base);
    }
    if (failures == 0)
        std::fprintf(stderr, "[check] all scale-out floors met\n");
    return failures == 0 ? 0 : 1;
}

} // namespace
} // namespace pddl

int
main(int argc, char **argv)
{
    using namespace pddl;

    bench::BenchCli cli(
        argv[0],
        "Scale-out benchmark: request and event rates of one volume "
        "striped over 1/2/4/8 PDDL shards, healthy and with a "
        "single-shard disk failure (simulated rates; rows are "
        "bit-identical for every --threads value).");
    cli.addBool("check",
                "enforce CI floors (4-shard >= 3x 1-shard req/s, "
                "fault rows rebuild without data loss) and exit 1 "
                "on regression");
    cli.parseOrExit(argc, argv);
    // Every row is a simulated rate: strip the informational host
    // wall fields so BENCH_scaleout.json is byte-identical for any
    // --threads value and CI can diff the raw files.
    bench::options().deterministic_json = true;

    std::vector<harness::Experiment> experiments;
    for (int shards : kShardCounts) {
        for (bool faulted : {false, true}) {
            harness::Experiment experiment;
            experiment.point = {"Scaleout",
                                std::string("volume/") +
                                    (faulted ? "shard0_failure"
                                             : "healthy"),
                                24, kClientsPerShard * shards,
                                AccessType::Read,
                                faulted ? ArrayMode::Degraded
                                        : ArrayMode::FaultFree};
            experiment.custom = [shards, faulted](
                                    uint64_t seed,
                                    harness::Extras &extras) {
                return runScaleout(shards, faulted, seed, extras);
            };
            experiments.push_back(std::move(experiment));
        }
    }

    harness::RunSummary summary = bench::runGrid(
        "Scaleout",
        "Volume scale-out: req/s and events/s vs shard count, "
        "healthy and with one shard rebuilding (simulated rates)",
        experiments);

    std::printf("Volume scale-out (%d clients per shard, 24 KB "
                "reads)\n",
                kClientsPerShard);
    std::printf("%7s %16s %12s %14s %9s %9s %10s\n", "shards",
                "scenario", "req/s", "events/sim-s", "resp ms",
                "sub/acc", "max depth");
    bench::printRule(8);
    for (const harness::PointResult &point : summary.points) {
        std::printf("%7d %16s %12.0f %14.0f %9.2f %9.3f %10.0f\n",
                    static_cast<int>(extra(point, "shards")),
                    point.point.mode == ArrayMode::FaultFree
                        ? "healthy"
                        : "shard0 failure",
                    extra(point, "req_per_s"),
                    extra(point, "events_per_sim_s"),
                    point.result.mean_response_ms,
                    extra(point, "sub_per_access"),
                    extra(point, "max_in_flight"));
    }

    if (cli.getBool("check"))
        return checkFloors(summary);
    return 0;
}
