/**
 * @file
 * Figure 8 reproduction: failure-free write response times for
 * 8..240 KB accesses.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Figure 8: fault-free write response times, 8-240 KB");
    bench::runResponseTimeFigure(
        "Figure 8", "Write response times, failure-free mode",
        {8, 48, 96, 144, 192, 240}, AccessType::Write,
        ArrayMode::FaultFree);
    return 0;
}
