/**
 * @file
 * Figure 17 reproduction: satisfactory base permutations for 55
 * disks and stripe width six.
 *
 * Validates the paper's published pair (combined reconstruction
 * tally flat at 2*(k-1)) and prints the per-permutation tallies, then
 * gives the bounded search a chance at finding its own group.
 */

#include <cstdio>
#include <cstdlib>

#include "bench_util.hh"
#include "core/search.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Figure 17: satisfactory base permutations for 55 disks, width 6");

    PermutationGroup pair = paperFigure17Pair();
    std::printf("Figure 17: base permutation pair for n=55, k=6, "
                "g=9\n\n");

    for (int q = 0; q < pair.size(); ++q) {
        PermutationGroup solo = pair;
        solo.perms = {pair.perms[q]};
        auto tally = reconstructionReadTally(solo);
        int64_t lo = tally[1], hi = tally[1];
        for (int d = 2; d < solo.n; ++d) {
            lo = std::min(lo, tally[d]);
            hi = std::max(hi, tally[d]);
        }
        std::printf("permutation %d alone: satisfactory=%s, "
                    "reconstruction reads per disk in [%lld, %lld] "
                    "(flat would be %d)\n",
                    q + 1, isSatisfactory(solo) ? "yes" : "no",
                    static_cast<long long>(lo),
                    static_cast<long long>(hi), solo.k - 1);
    }
    std::printf("published pair combined: satisfactory=%s (target "
                "%d reads per surviving disk)\n\n",
                isSatisfactory(pair) ? "yes" : "no", 2 * (pair.k - 1));

    std::printf("bounded search for an independent pair "
                "(restarts scale with PDDL_BENCH_FULL):\n");
    SearchOptions options;
    const bool full = std::getenv("PDDL_BENCH_FULL") != nullptr;
    options.restarts = full ? 400 : 40;
    options.max_steps = full ? 40000 : 8000;
    auto found = searchGroupOfSize(55, 6, 2, options);
    if (found) {
        std::printf("search found its own satisfactory pair.\n");
    } else {
        std::printf("search budget exhausted without a pair; the "
                    "paper notes there is no generic way to find "
                    "groups (section 5), and its own pair verifies "
                    "above.\n");
    }
    return 0;
}
