/**
 * @file
 * Figure 14 reproduction: the four 336 KB panels (reads and writes,
 * failure-free and single-failure modes).
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Figure 14: 336 KB response times, reads and writes, both modes");
    bench::runResponseTimeFigure("Figure 14 (top left)",
                                 "336 KB reads, fault free", {336},
                                 AccessType::Read, ArrayMode::FaultFree);
    bench::runResponseTimeFigure("Figure 14 (top right)",
                                 "336 KB reads, single failure", {336},
                                 AccessType::Read, ArrayMode::Degraded);
    bench::runResponseTimeFigure("Figure 14 (bottom left)",
                                 "336 KB writes, fault free", {336},
                                 AccessType::Write,
                                 ArrayMode::FaultFree);
    bench::runResponseTimeFigure("Figure 14 (bottom right)",
                                 "336 KB writes, single failure",
                                 {336}, AccessType::Write,
                                 ArrayMode::Degraded);
    return 0;
}
