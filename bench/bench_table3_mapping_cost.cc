/**
 * @file
 * Table 3 reproduction: comparison of the declustering schemes'
 * mapping machinery -- table sizes, sparing, period (printed), and
 * measured address-translation time (google-benchmark).
 *
 * The paper reports translation *complexity*; we measure it: each
 * benchmark translates a stream of client data-unit addresses
 * through the scheme's mapping function.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/pddl_layout.hh"
#include "layout/datum.hh"
#include "layout/parity_decluster.hh"
#include "layout/prime.hh"
#include "layout/pseudo_random.hh"
#include "layout/raid5.hh"
#include "util/gf2m.hh"

namespace {

using namespace pddl;

template <typename MakeLayout>
void
translateLoop(benchmark::State &state, MakeLayout make)
{
    auto layout = make();
    int64_t du = 0;
    const int64_t span = layout.dataUnitsPerPeriod() * 4;
    for (auto _ : state) {
        PhysAddr addr = layout.map(layout.virtualOf(du));
        benchmark::DoNotOptimize(addr);
        du = (du + 7) % span;
    }
}

void
BM_ParityDeclustering(benchmark::State &state)
{
    translateLoop(state,
                  [] { return ParityDeclusterLayout::make(13, 4); });
}
BENCHMARK(BM_ParityDeclustering);

void
BM_PseudoRandom(benchmark::State &state)
{
    translateLoop(state, [] { return PseudoRandomLayout(13, 4); });
}
BENCHMARK(BM_PseudoRandom);

void
BM_Datum(benchmark::State &state)
{
    translateLoop(state, [] { return DatumLayout(13, 4); });
}
BENCHMARK(BM_Datum);

void
BM_Prime(benchmark::State &state)
{
    translateLoop(state, [] { return PrimeLayout(13, 4); });
}
BENCHMARK(BM_Prime);

void
BM_Pddl(benchmark::State &state)
{
    translateLoop(state, [] { return PddlLayout::make(13, 4); });
}
BENCHMARK(BM_Pddl);

void
BM_PddlXorDevelopment(benchmark::State &state)
{
    translateLoop(state, [] {
        return PddlLayout(boseGF2m(GF2m(4), 5));
    });
}
BENCHMARK(BM_PddlXorDevelopment);

void
BM_Raid5(benchmark::State &state)
{
    translateLoop(state, [] { return Raid5Layout(13); });
}
BENCHMARK(BM_Raid5);

/** The paper's raw virtual2physical kernel (appendix listing). */
void
BM_PddlVirtual2PhysicalKernel(benchmark::State &state)
{
    PddlLayout layout = PddlLayout::make(13, 4);
    int disk = 0;
    int64_t offset = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(layout.virtual2physical(disk, offset));
        disk = (disk + 1) % 13;
        ++offset;
    }
}
BENCHMARK(BM_PddlVirtual2PhysicalKernel);

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Table 3: Comparison of PDDL with other declustering "
                "schemes (n=13, k=4, p=1)\n\n");
    std::printf("%-22s %14s %10s %18s\n", "scheme", "table size",
                "sparing", "period (stripes)");
    std::printf("%-22s %14s %10s %18lld\n", "Parity Declustering",
                "n(n-1)/(k-1)=52", "no",
                static_cast<long long>(
                    ParityDeclusterLayout::make(13, 4)
                        .stripesPerPeriod()));
    std::printf("%-22s %14s %10s %18s\n", "Pseudo-Random",
                "seed only", "optional", "per-round");
    std::printf("%-22s %14s %10s %18lld\n", "DATUM", "0", "no",
                static_cast<long long>(
                    DatumLayout(13, 4).stripesPerPeriod()));
    std::printf("%-22s %14s %10s %18lld\n", "PRIME", "0", "no",
                static_cast<long long>(
                    PrimeLayout(13, 4).stripesPerPeriod()));
    std::printf("%-22s %14s %10s %18lld\n", "PDDL", "p*n=13", "yes",
                static_cast<long long>(
                    PddlLayout::make(13, 4).stripesPerPeriod()));
    std::printf("\nTranslation time (measured):\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
