/**
 * @file
 * Heterogeneous-volume benchmark: mixed-tier (flash mirror + PDDL
 * rotating disks) against homogeneous configurations of equal
 * hardware cost, under the hot-spot traffic of the traffic bench.
 *
 * Every configuration spends the same cost budget (sum over shards
 * of disks x DeviceModel::costUnits()):
 *
 *  - hdd-pddl:    2 shards x 13 HP 2247 drives, PDDL width 4 -- the
 *                 paper's array, scaled out (the incumbent);
 *  - hdd-mirror:  one RAID-1/0 shard over 26 HP 2247 drives -- no
 *                 parity RMW, but every access is mechanical;
 *  - ssd-mirror:  one RAID-1/0 shard over 8 flash devices -- fast
 *                 but an order of magnitude short on capacity, so
 *                 it is reported yet excluded from the --check
 *                 floors (capacity-infeasible at this budget);
 *  - hybrid:      a 4-device flash mirror tier fronting a 13-drive
 *                 PDDL shard under Tiered allocation -- the hot
 *                 address prefix lands on the mirror, cold capacity
 *                 on parity-protected disks.
 *
 * The workload is the PR-7 hot-spot profile: hot:0.02,0.90 (2% of
 * the address space takes 90% of the traffic), in a write-heavy and
 * a read-heavy mix. Under Tiered allocation the hot prefix is
 * exactly the flash tier's span, so the hybrid serves ~90% of
 * accesses from flash while every cold access pays the mechanical
 * price -- the class-aware placement the heterogeneous-array
 * literature argues for.
 *
 * Rows report p50/p95/p99/p99.9 from the client.latency_ms
 * histogram, whose bucket bounds come from the device registry
 * (device::latencyBoundsForDevices): flash-class rows keep
 * sub-millisecond resolution instead of collapsing into bucket 0.
 * Rows contain only simulated quantities, so BENCH_hybrid.json is
 * byte-identical across --threads and --sim-threads; CI diffs the
 * raw files.
 *
 * --check enforces the CI floors: every configuration spends the
 * same cost budget, and the hybrid beats every capacity-feasible
 * homogeneous configuration (mean and p99, both mixes).
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "sim/parallel_engine.hh"
#include "traffic/offset_dist.hh"
#include "volume/volume_manager.hh"
#include "workload/open_loop.hh"

namespace pddl {
namespace {

constexpr double kDispatchMs = 2.0;

/** The hot-spot profile: 2% of addresses take 90% of the traffic. */
constexpr double kHotFraction = 0.02;
constexpr double kHotWeight = 0.90;

/** One equal-cost volume configuration. */
struct HybridConfig
{
    std::string name;
    std::vector<ShardSpec> shards;
    VolumeAllocation allocation = VolumeAllocation::Striped;
    /** Excluded from the --check floors (capacity-infeasible). */
    bool feasible = true;
};

ShardSpec
shard(const std::string &layout_spec, const std::string &device_spec,
      int disks, const std::string &tier = "")
{
    ShardSpec spec;
    spec.layout_spec = layout_spec;
    spec.device_spec = device_spec;
    spec.disks = disks;
    spec.tier = tier;
    return spec;
}

/**
 * The evaluated configurations. The flash device's default cost
 * (3.25 units vs the HP 2247's 1.0) makes the budgets line up:
 * 26 = 2x13 hdd = 26 hdd = 8 x 3.25 ssd = 4 x 3.25 ssd + 13 hdd.
 */
std::vector<HybridConfig>
configurations()
{
    std::vector<HybridConfig> configs;

    HybridConfig hdd_pddl;
    hdd_pddl.name = "hdd-pddl";
    hdd_pddl.shards = {shard("pddl:width=4", "hp2247", 13),
                       shard("pddl:width=4", "hp2247", 13)};
    configs.push_back(std::move(hdd_pddl));

    HybridConfig hdd_mirror;
    hdd_mirror.name = "hdd-mirror";
    hdd_mirror.shards = {
        shard("mirror:copies=2,sched=round_robin", "hp2247", 26)};
    configs.push_back(std::move(hdd_mirror));

    HybridConfig ssd_mirror;
    ssd_mirror.name = "ssd-mirror";
    ssd_mirror.shards = {
        shard("mirror:copies=2,sched=round_robin", "ssd", 8)};
    ssd_mirror.feasible = false; // ~10x short on capacity
    configs.push_back(std::move(ssd_mirror));

    HybridConfig hybrid;
    hybrid.name = "hybrid";
    hybrid.shards = {
        shard("mirror:copies=2,sched=round_robin", "ssd", 4, "fast"),
        shard("pddl:width=4", "hp2247", 13, "bulk")};
    hybrid.allocation = VolumeAllocation::Tiered;
    configs.push_back(std::move(hybrid));

    // The hybrid again with the shortest-queue replica scheduler:
    // same hardware, the read path load-balances on live queue
    // depth instead of round-robin.
    HybridConfig hybrid_sq;
    hybrid_sq.name = "hybrid-sq";
    hybrid_sq.shards = {
        shard("mirror:copies=2,sched=shortest_queue", "ssd", 4,
              "fast"),
        shard("pddl:width=4", "hp2247", 13, "bulk")};
    hybrid_sq.allocation = VolumeAllocation::Tiered;
    configs.push_back(std::move(hybrid_sq));

    return configs;
}

std::vector<AccessMixEntry>
mixFor(bool write_heavy)
{
    if (write_heavy) {
        return {{1, AccessType::Write, 0.60},
                {4, AccessType::Write, 0.10},
                {1, AccessType::Read, 0.25},
                {4, AccessType::Read, 0.05}};
    }
    return {{1, AccessType::Read, 0.70},
            {1, AccessType::Write, 0.20},
            {3, AccessType::Read, 0.10}};
}

/** One scenario = one configuration under one mix. */
struct Scenario
{
    std::string label;
    const HybridConfig *config = nullptr;
    bool write_heavy = false;
};

SimResult
runScenario(const Scenario &scenario, uint64_t seed,
            harness::Extras &extras)
{
    const HybridConfig &config = *scenario.config;
    const int shard_count = static_cast<int>(config.shards.size());

    ParallelEngine::Config engine_config;
    engine_config.threads = bench::options().sim_threads;
    engine_config.lookahead = kDispatchMs;
    ParallelEngine engine(shard_count, engine_config);

    VolumeConfig vconfig;
    vconfig.chunk_units = 8;
    vconfig.dispatch_ms = kDispatchMs;
    vconfig.allocation = config.allocation;
    VolumeManager volume(engine, config.shards, vconfig);

    // Histogram resolution is a property of the device classes
    // present: a flash row keeps sub-ms buckets, a pure-hdd row the
    // default mechanical bounds.
    std::vector<const DeviceModel *> devices;
    double cost = 0.0;
    for (int s = 0; s < volume.shardCount(); ++s) {
        devices.push_back(&volume.shardDevice(s));
        cost += config.shards[s].disks *
                volume.shardDevice(s).costUnits();
    }
    obs::MetricsRegistry registry;
    registry.setHistogramBounds(
        device::latencyBoundsForDevices(devices));
    obs::Probe probe(&registry, nullptr);

    OpenLoopConfig workload;
    workload.arrivals_per_s = 120.0;
    workload.mix = mixFor(scenario.write_heavy);
    workload.samples = bench::fullFidelity() ? 12000 : 4000;
    workload.warmup = bench::fullFidelity() ? 1500 : 600;
    workload.seed = seed;
    workload.offsets.kind = traffic::OffsetSpec::Kind::HotSpot;
    workload.offsets.hot_fraction = kHotFraction;
    workload.offsets.hot_weight = kHotWeight;
    workload.probe = probe;

    OpenLoopClient client(workload);
    startOnHub(client, engine, volume);
    engine.run();

    OpenLoopResult open = client.result();
    SimResult result;
    result.mean_response_ms = open.mean_response_ms;
    result.throughput_per_s = open.completed_per_s;
    result.samples = open.samples;

    obs::MetricsSnapshot snapshot = registry.snapshot();
    const obs::HistogramData *latency =
        snapshot.histogram("client.latency_ms");
    extras.emplace_back("p50_ms",
                        latency ? latency->quantile(0.50) : 0.0);
    extras.emplace_back("p95_ms",
                        latency ? latency->quantile(0.95) : 0.0);
    extras.emplace_back("p99_ms",
                        latency ? latency->quantile(0.99) : 0.0);
    extras.emplace_back("p999_ms",
                        latency ? latency->quantile(0.999) : 0.0);
    extras.emplace_back("max_outstanding", open.max_outstanding);
    extras.emplace_back("cost_units", cost);
    extras.emplace_back("capacity_units",
                        static_cast<double>(volume.dataUnits()));
    extras.emplace_back("feasible", config.feasible ? 1.0 : 0.0);
    // How the tiering actually split the traffic.
    for (int s = 0; s < volume.shardCount(); ++s) {
        extras.emplace_back("shard" + std::to_string(s) + "_accesses",
                            static_cast<double>(
                                volume.shard(s).accessesIssued()));
    }
    return result;
}

double
extra(const harness::PointResult &point, const char *key)
{
    for (const auto &[name, value] : point.extras) {
        if (name == key)
            return value;
    }
    return 0.0;
}

const harness::PointResult *
findRow(const harness::RunSummary &summary, const std::string &label)
{
    for (const harness::PointResult &point : summary.points) {
        if (point.point.layout == label)
            return &point;
    }
    return nullptr;
}

/** Enforce the equal-cost floors. @return exit code. */
int
checkFloors(const harness::RunSummary &summary)
{
    int failures = 0;

    // Every configuration spends the same budget.
    const double budget = extra(summary.points.front(), "cost_units");
    for (const harness::PointResult &point : summary.points) {
        if (extra(point, "cost_units") != budget) {
            std::fprintf(stderr,
                         "[check] FAIL %s: cost %.2f != budget %.2f\n",
                         point.point.layout.c_str(),
                         extra(point, "cost_units"), budget);
            ++failures;
        }
    }

    // The hybrid beats every capacity-feasible homogeneous config.
    for (const char *mix : {"write-heavy", "read-heavy"}) {
        const harness::PointResult *hybrid =
            findRow(summary, std::string("hybrid/") + mix);
        if (hybrid == nullptr) {
            std::fprintf(stderr, "[check] FAIL missing hybrid/%s\n",
                         mix);
            ++failures;
            continue;
        }
        for (const char *rival : {"hdd-pddl", "hdd-mirror"}) {
            const harness::PointResult *row =
                findRow(summary, std::string(rival) + "/" + mix);
            if (row == nullptr) {
                std::fprintf(stderr,
                             "[check] FAIL missing %s/%s\n", rival,
                             mix);
                ++failures;
                continue;
            }
            const bool mean_ok = hybrid->result.mean_response_ms <
                                 row->result.mean_response_ms;
            const bool p99_ok =
                extra(*hybrid, "p99_ms") <= extra(*row, "p99_ms");
            if (!mean_ok || !p99_ok) {
                std::fprintf(
                    stderr,
                    "[check] FAIL hybrid/%s vs %s: mean %.2f vs "
                    "%.2f ms, p99 %.2f vs %.2f ms\n",
                    mix, rival, hybrid->result.mean_response_ms,
                    row->result.mean_response_ms,
                    extra(*hybrid, "p99_ms"), extra(*row, "p99_ms"));
                ++failures;
            } else {
                std::fprintf(
                    stderr,
                    "[check] hybrid/%s beats %s: mean %.2f vs %.2f "
                    "ms, p99 %.2f vs %.2f ms\n",
                    mix, rival, hybrid->result.mean_response_ms,
                    row->result.mean_response_ms,
                    extra(*hybrid, "p99_ms"), extra(*row, "p99_ms"));
            }
        }
    }

    if (failures == 0)
        std::fprintf(stderr, "[check] all hybrid floors met\n");
    return failures == 0 ? 0 : 1;
}

} // namespace
} // namespace pddl

int
main(int argc, char **argv)
{
    using namespace pddl;

    bench::BenchCli cli(
        argv[0],
        "Heterogeneous-volume benchmark: a flash-mirror tier "
        "fronting PDDL rotating disks vs homogeneous configurations "
        "of equal hardware cost, under hot-spot traffic (rows are "
        "bit-identical for every --threads and --sim-threads "
        "value).");
    cli.addBool("check",
                "enforce CI floors (equal cost budgets; the hybrid "
                "beats every capacity-feasible homogeneous config on "
                "mean and p99) and exit 1 on regression");
    cli.parseOrExit(argc, argv);
    bench::options().deterministic_json = true;

    const std::vector<HybridConfig> configs = configurations();

    std::vector<Scenario> scenarios;
    for (const HybridConfig &config : configs) {
        for (bool write_heavy : {true, false}) {
            Scenario scenario;
            scenario.label = config.name + "/" +
                             (write_heavy ? "write-heavy"
                                          : "read-heavy");
            scenario.config = &config;
            scenario.write_heavy = write_heavy;
            scenarios.push_back(std::move(scenario));
        }
    }

    std::vector<harness::Experiment> experiments;
    for (const Scenario &scenario : scenarios) {
        harness::Experiment experiment;
        experiment.point = {"Hybrid", scenario.label, 8, 120,
                            scenario.write_heavy ? AccessType::Write
                                                 : AccessType::Read,
                            ArrayMode::FaultFree};
        experiment.custom = [&scenario](uint64_t seed,
                                        harness::Extras &extras) {
            return runScenario(scenario, seed, extras);
        };
        experiments.push_back(std::move(experiment));
    }

    harness::RunSummary summary = bench::runGrid(
        "Hybrid",
        "Mixed-tier vs homogeneous volumes at equal cost: hot-spot "
        "traffic, write-heavy and read-heavy mixes "
        "(p50/p95/p99/p99.9 ms)",
        experiments);

    std::printf("Heterogeneous volumes at equal cost (%d "
                "sim-thread(s))\n",
                bench::options().sim_threads);
    std::printf("%-24s %8s %8s %8s %8s %8s %10s %6s\n",
                "configuration", "req/s", "p50", "p95", "p99",
                "p99.9", "capacity", "cost");
    bench::printRule(9);
    for (const harness::PointResult &point : summary.points) {
        std::printf("%-24s %8.1f %8.2f %8.2f %8.2f %8.2f %10.0f "
                    "%6.1f%s\n",
                    point.point.layout.c_str(),
                    point.result.throughput_per_s,
                    extra(point, "p50_ms"), extra(point, "p95_ms"),
                    extra(point, "p99_ms"), extra(point, "p999_ms"),
                    extra(point, "capacity_units"),
                    extra(point, "cost_units"),
                    extra(point, "feasible") != 0.0
                        ? ""
                        : "  (capacity-infeasible)");
    }

    if (cli.getBool("check"))
        return checkFloors(summary);
    return 0;
}
