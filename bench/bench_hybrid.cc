/**
 * @file
 * Heterogeneous-volume benchmark: mixed-tier (flash mirror + PDDL
 * rotating disks) against homogeneous configurations of equal
 * hardware cost, under the hot-spot traffic of the traffic bench.
 *
 * Every configuration spends the same cost budget (sum over shards
 * of disks x DeviceModel::costUnits()):
 *
 *  - hdd-pddl:    2 shards x 13 HP 2247 drives, PDDL width 4 -- the
 *                 paper's array, scaled out (the incumbent);
 *  - hdd-mirror:  one RAID-1/0 shard over 26 HP 2247 drives -- no
 *                 parity RMW, but every access is mechanical;
 *  - ssd-mirror:  one RAID-1/0 shard over 8 flash devices -- fast
 *                 but an order of magnitude short on capacity, so
 *                 it is reported yet excluded from the --check
 *                 floors (capacity-infeasible at this budget);
 *  - hybrid:      a 4-device flash mirror tier fronting a 13-drive
 *                 PDDL shard under Tiered allocation -- the hot
 *                 address prefix lands on the mirror, cold capacity
 *                 on parity-protected disks.
 *
 * Every row is one ScenarioSpec (core/scenario_spec.hh) run through
 * the shared scenario runner (src/tune) -- the same engine that backs
 * bench_traffic and the autotuner, so a row here is replayable from
 * its serialized spec alone. --scenario <file|json> swaps the
 * workload template (rates, chunking, sample budget); the bench then
 * substitutes each configuration's shard set and allocation on top.
 *
 * The workload is the PR-7 hot-spot profile: hot:0.02,0.9 (2% of
 * the address space takes 90% of the traffic), in a write-heavy and
 * a read-heavy mix. Under Tiered allocation the hot prefix is
 * exactly the flash tier's span, so the hybrid serves ~90% of
 * accesses from flash while every cold access pays the mechanical
 * price -- the class-aware placement the heterogeneous-array
 * literature argues for.
 *
 * Rows report p50/p95/p99/p99.9 from the client.latency_ms
 * histogram, whose bucket bounds come from the device registry
 * (device::latencyBoundsForDevices, applied inside the runner):
 * flash-class rows keep sub-millisecond resolution instead of
 * collapsing into bucket 0. Rows contain only simulated quantities,
 * so BENCH_hybrid.json is byte-identical across --threads and
 * --sim-threads; CI diffs the raw files.
 *
 * --check enforces the CI floors: every configuration spends the
 * same cost budget, and the hybrid beats every capacity-feasible
 * homogeneous configuration (mean and p99, both mixes).
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "tune/scenario_runner.hh"

namespace pddl {
namespace {

/** The hot-spot profile: 2% of addresses take 90% of the traffic. */
constexpr double kHotFraction = 0.02;
constexpr double kHotWeight = 0.90;

/** One equal-cost volume configuration. */
struct HybridConfig
{
    std::string name;
    std::vector<ScenarioShard> shards;
    std::string allocation = "striped";
    /** Excluded from the --check floors (capacity-infeasible). */
    bool feasible = true;
};

ScenarioShard
shard(const std::string &layout, const std::string &device, int disks,
      const std::string &tier = "")
{
    ScenarioShard spec;
    spec.layout = layout;
    spec.device = device;
    spec.disks = disks;
    spec.tier = tier;
    return spec;
}

/**
 * The evaluated configurations. The flash device's default cost
 * (3.25 units vs the HP 2247's 1.0) makes the budgets line up:
 * 26 = 2x13 hdd = 26 hdd = 8 x 3.25 ssd = 4 x 3.25 ssd + 13 hdd.
 */
std::vector<HybridConfig>
configurations()
{
    std::vector<HybridConfig> configs;

    HybridConfig hdd_pddl;
    hdd_pddl.name = "hdd-pddl";
    hdd_pddl.shards = {shard("pddl:width=4", "hp2247", 13),
                       shard("pddl:width=4", "hp2247", 13)};
    configs.push_back(std::move(hdd_pddl));

    HybridConfig hdd_mirror;
    hdd_mirror.name = "hdd-mirror";
    hdd_mirror.shards = {
        shard("mirror:copies=2,sched=round_robin", "hp2247", 26)};
    configs.push_back(std::move(hdd_mirror));

    HybridConfig ssd_mirror;
    ssd_mirror.name = "ssd-mirror";
    ssd_mirror.shards = {
        shard("mirror:copies=2,sched=round_robin", "ssd", 8)};
    ssd_mirror.feasible = false; // ~10x short on capacity
    configs.push_back(std::move(ssd_mirror));

    HybridConfig hybrid;
    hybrid.name = "hybrid";
    hybrid.shards = {
        shard("mirror:copies=2,sched=round_robin", "ssd", 4, "fast"),
        shard("pddl:width=4", "hp2247", 13, "bulk")};
    hybrid.allocation = "tiered";
    configs.push_back(std::move(hybrid));

    // The hybrid again with the shortest-queue replica scheduler:
    // same hardware, the read path load-balances on live queue
    // depth instead of round-robin.
    HybridConfig hybrid_sq;
    hybrid_sq.name = "hybrid-sq";
    hybrid_sq.shards = {
        shard("mirror:copies=2,sched=shortest_queue", "ssd", 4,
              "fast"),
        shard("pddl:width=4", "hp2247", 13, "bulk")};
    hybrid_sq.allocation = "tiered";
    configs.push_back(std::move(hybrid_sq));

    return configs;
}

/**
 * The workload template every row starts from: --scenario when
 * given, else the bench's traditional open-loop hot-spot profile.
 * Each configuration then replaces the shard set and allocation.
 */
ScenarioSpec
baseSpec()
{
    ScenarioSpec spec;
    if (!bench::options().scenario.empty()) {
        std::string error;
        // The flag validator already accepted it; reparse for real.
        if (!loadScenario(bench::options().scenario, spec, error)) {
            std::fprintf(stderr, "--scenario: %s\n", error.c_str());
            std::exit(2);
        }
        return spec;
    }
    spec.chunk_units = 8;
    spec.dispatch_ms = 2.0;
    spec.arrivals_per_s = 120.0;
    char hot[64];
    std::snprintf(hot, sizeof(hot), "hot:%g,%g", kHotFraction,
                  kHotWeight);
    spec.offsets = hot;
    spec.samples = bench::fullFidelity() ? 12000 : 4000;
    spec.warmup = bench::fullFidelity() ? 1500 : 600;
    return spec;
}

void
applyMix(ScenarioSpec &spec, bool write_heavy)
{
    if (write_heavy) {
        spec.mix = {{8, true, 0.60},
                    {32, true, 0.10},
                    {8, false, 0.25},
                    {32, false, 0.05}};
    } else {
        spec.mix = {{8, false, 0.70},
                    {8, true, 0.20},
                    {24, false, 0.10}};
    }
}

/** One row = one configuration under one mix. */
struct Row
{
    std::string label;
    ScenarioSpec spec;
    bool feasible = true;
};

SimResult
runRow(const Row &row, uint64_t seed, harness::Extras &extras)
{
    tune::RunScenarioOptions options;
    options.seed = seed;
    options.sim_threads = bench::options().sim_threads;

    const tune::ScenarioOutcome outcome =
        tune::runScenario(row.spec, options);

    extras.emplace_back("p50_ms", outcome.p50_ms);
    extras.emplace_back("p95_ms", outcome.p95_ms);
    extras.emplace_back("p99_ms", outcome.p99_ms);
    extras.emplace_back("p999_ms", outcome.p999_ms);
    extras.emplace_back("max_outstanding", outcome.max_outstanding);
    extras.emplace_back("cost_units", outcome.cost_units);
    extras.emplace_back(
        "capacity_units",
        static_cast<double>(outcome.capacity_units));
    extras.emplace_back("feasible", row.feasible ? 1.0 : 0.0);
    // How the tiering actually split the traffic.
    for (size_t s = 0; s < outcome.shard_accesses.size(); ++s) {
        extras.emplace_back(
            "shard" + std::to_string(s) + "_accesses",
            static_cast<double>(outcome.shard_accesses[s]));
    }

    SimResult result;
    result.mean_response_ms = outcome.mean_ms;
    result.throughput_per_s = outcome.throughput_per_s;
    result.samples = outcome.samples;
    return result;
}

double
extra(const harness::PointResult &point, const char *key)
{
    for (const auto &[name, value] : point.extras) {
        if (name == key)
            return value;
    }
    return 0.0;
}

const harness::PointResult *
findRow(const harness::RunSummary &summary, const std::string &label)
{
    for (const harness::PointResult &point : summary.points) {
        if (point.point.layout == label)
            return &point;
    }
    return nullptr;
}

/** Enforce the equal-cost floors. @return exit code. */
int
checkFloors(const harness::RunSummary &summary)
{
    int failures = 0;

    // Every configuration spends the same budget.
    const double budget = extra(summary.points.front(), "cost_units");
    for (const harness::PointResult &point : summary.points) {
        if (extra(point, "cost_units") != budget) {
            std::fprintf(stderr,
                         "[check] FAIL %s: cost %.2f != budget %.2f\n",
                         point.point.layout.c_str(),
                         extra(point, "cost_units"), budget);
            ++failures;
        }
    }

    // The hybrid beats every capacity-feasible homogeneous config.
    for (const char *mix : {"write-heavy", "read-heavy"}) {
        const harness::PointResult *hybrid =
            findRow(summary, std::string("hybrid/") + mix);
        if (hybrid == nullptr) {
            std::fprintf(stderr, "[check] FAIL missing hybrid/%s\n",
                         mix);
            ++failures;
            continue;
        }
        for (const char *rival : {"hdd-pddl", "hdd-mirror"}) {
            const harness::PointResult *row =
                findRow(summary, std::string(rival) + "/" + mix);
            if (row == nullptr) {
                std::fprintf(stderr,
                             "[check] FAIL missing %s/%s\n", rival,
                             mix);
                ++failures;
                continue;
            }
            const bool mean_ok = hybrid->result.mean_response_ms <
                                 row->result.mean_response_ms;
            const bool p99_ok =
                extra(*hybrid, "p99_ms") <= extra(*row, "p99_ms");
            if (!mean_ok || !p99_ok) {
                std::fprintf(
                    stderr,
                    "[check] FAIL hybrid/%s vs %s: mean %.2f vs "
                    "%.2f ms, p99 %.2f vs %.2f ms\n",
                    mix, rival, hybrid->result.mean_response_ms,
                    row->result.mean_response_ms,
                    extra(*hybrid, "p99_ms"), extra(*row, "p99_ms"));
                ++failures;
            } else {
                std::fprintf(
                    stderr,
                    "[check] hybrid/%s beats %s: mean %.2f vs %.2f "
                    "ms, p99 %.2f vs %.2f ms\n",
                    mix, rival, hybrid->result.mean_response_ms,
                    row->result.mean_response_ms,
                    extra(*hybrid, "p99_ms"), extra(*row, "p99_ms"));
            }
        }
    }

    if (failures == 0)
        std::fprintf(stderr, "[check] all hybrid floors met\n");
    return failures == 0 ? 0 : 1;
}

} // namespace
} // namespace pddl

int
main(int argc, char **argv)
{
    using namespace pddl;

    bench::BenchCli cli(
        argv[0],
        "Heterogeneous-volume benchmark: a flash-mirror tier "
        "fronting PDDL rotating disks vs homogeneous configurations "
        "of equal hardware cost, under hot-spot traffic (rows are "
        "bit-identical for every --threads and --sim-threads "
        "value).");
    cli.addBool("check",
                "enforce CI floors (equal cost budgets; the hybrid "
                "beats every capacity-feasible homogeneous config on "
                "mean and p99) and exit 1 on regression");
    cli.parseOrExit(argc, argv);
    bench::options().deterministic_json = true;

    const ScenarioSpec base = baseSpec();

    std::vector<Row> rows;
    for (const HybridConfig &config : configurations()) {
        for (bool write_heavy : {true, false}) {
            Row row;
            row.spec = base;
            row.spec.shards = config.shards;
            row.spec.allocation = config.allocation;
            applyMix(row.spec, write_heavy);
            row.feasible = config.feasible;
            std::string error;
            if (!row.spec.normalize(error)) {
                std::fprintf(stderr, "%s row: %s\n",
                             config.name.c_str(), error.c_str());
                return 2;
            }
            row.label = config.name + "/" +
                        (write_heavy ? "write-heavy" : "read-heavy");
            rows.push_back(std::move(row));
        }
    }

    std::vector<harness::Experiment> experiments;
    for (const Row &row : rows) {
        harness::Experiment experiment;
        const bool write_heavy =
            !row.spec.mix.empty() && row.spec.mix.front().write;
        experiment.point = {"Hybrid", row.label, 8,
                            static_cast<int>(row.spec.arrivals_per_s),
                            write_heavy ? AccessType::Write
                                        : AccessType::Read,
                            ArrayMode::FaultFree};
        experiment.custom = [&row](uint64_t seed,
                                   harness::Extras &extras) {
            return runRow(row, seed, extras);
        };
        experiments.push_back(std::move(experiment));
    }

    harness::RunSummary summary = bench::runGrid(
        "Hybrid",
        "Mixed-tier vs homogeneous volumes at equal cost: hot-spot "
        "traffic, write-heavy and read-heavy mixes "
        "(p50/p95/p99/p99.9 ms)",
        experiments);

    std::printf("Heterogeneous volumes at equal cost (%d "
                "sim-thread(s))\n",
                bench::options().sim_threads);
    std::printf("%-24s %8s %8s %8s %8s %8s %10s %6s\n",
                "configuration", "req/s", "p50", "p95", "p99",
                "p99.9", "capacity", "cost");
    bench::printRule(9);
    for (const harness::PointResult &point : summary.points) {
        std::printf("%-24s %8.1f %8.2f %8.2f %8.2f %8.2f %10.0f "
                    "%6.1f%s\n",
                    point.point.layout.c_str(),
                    point.result.throughput_per_s,
                    extra(point, "p50_ms"), extra(point, "p95_ms"),
                    extra(point, "p99_ms"), extra(point, "p999_ms"),
                    extra(point, "capacity_units"),
                    extra(point, "cost_units"),
                    extra(point, "feasible") != 0.0
                        ? ""
                        : "  (capacity-infeasible)");
    }

    if (cli.getBool("check"))
        return checkFloors(summary);
    return 0;
}
