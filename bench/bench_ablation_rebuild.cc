/**
 * @file
 * Ablation: on-line reconstruction. Declustering's raison d'etre
 * (section 1) is less-intrusive rebuild; this bench sweeps the
 * rebuild parallelism and reports both the rebuild duration and the
 * client response time experienced *during* the rebuild.
 */

#include <functional>

#include "array/reconstruction.hh"
#include "bench_util.hh"
#include "stats/welford.hh"
#include "util/rng.hh"

using namespace pddl;

namespace {

struct Outcome
{
    double rebuild_ms;
    double client_ms;
    int64_t client_samples;
};

Outcome
run(const Layout &layout, int clients, int rebuild_parallel,
    int64_t stripes, uint64_t seed)
{
    EventQueue events;
    ArrayConfig config;
    config.mode = ArrayMode::Degraded;
    config.failed_disk = 0;
    ArrayController array(events, layout, device::hp2247(), config);

    ReconstructionEngine engine(events, array, 0, stripes,
                                rebuild_parallel);
    Rng rng(seed);
    Welford response;
    std::function<void()> client = [&] {
        if (engine.complete())
            return;
        int64_t start =
            static_cast<int64_t>(rng.below(array.dataUnits() - 3));
        SimTime issued = events.now();
        array.access(start, 3, AccessType::Read, [&, issued] {
            response.add(events.now() - issued);
            client();
        });
    };
    engine.start({});
    for (int c = 0; c < clients; ++c)
        client();
    events.runUntilEmpty();
    return Outcome{engine.durationMs(), response.mean(),
                   response.count()};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseArgs(argc, argv,
                     "Ablation: rebuild parallelism vs duration and client response time");
    PddlLayout layout = PddlLayout::make(13, 4);
    const int64_t stripes = bench::fullFidelity() ? 39000 : 3900;

    const char *figure = "Ablation rebuild";
    const char *caption = "on-line reconstruction (PDDL, 13 disks)";
    const std::vector<int> client_counts = {0, 4, 10};
    const std::vector<int> parallelism = {1, 2, 4, 8};

    std::vector<harness::Experiment> experiments;
    for (int clients : client_counts) {
        for (int parallel : parallelism) {
            harness::Experiment experiment;
            experiment.point = {figure,
                                "PDDL/parallel=" +
                                    std::to_string(parallel),
                                24, clients, AccessType::Read,
                                ArrayMode::Degraded};
            experiment.custom = [&layout, clients, parallel, stripes](
                                    uint64_t seed,
                                    harness::Extras &extras) {
                Outcome o =
                    run(layout, clients, parallel, stripes, seed);
                extras.emplace_back("rebuild_ms", o.rebuild_ms);
                extras.emplace_back(
                    "client_samples",
                    static_cast<double>(o.client_samples));
                SimResult result;
                result.mean_response_ms = o.client_ms;
                result.samples = o.client_samples;
                return result;
            };
            experiments.push_back(std::move(experiment));
        }
    }
    harness::RunSummary summary =
        bench::runGrid(figure, caption, experiments);

    std::printf("Ablation: on-line reconstruction (PDDL, 13 disks, "
                "%lld stripes swept, 24 KB foreground reads)\n\n",
                static_cast<long long>(stripes));
    std::printf("%-10s %-10s %14s %18s\n", "clients", "parallel",
                "rebuild ms", "client resp ms");
    bench::printRule(6);
    size_t index = 0;
    for (int clients : client_counts) {
        for (int parallel : parallelism) {
            const harness::PointResult &point =
                summary.points[index++];
            std::printf("%-10d %-10d %14.0f %18.1f\n", clients,
                        parallel, point.extras[0].second,
                        clients ? point.result.mean_response_ms
                                : 0.0);
        }
    }
    std::printf("\nTrade-off: wider rebuild finishes sooner but "
                "inflates foreground response times\n(the rebuild-"
                "rate knob of Holland & Gibson's on-line recovery "
                "work).\n");
    return 0;
}
