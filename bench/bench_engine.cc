/**
 * @file
 * Engine microbenchmark: how fast is the simulation core itself?
 *
 * Unlike the figure benches (which reproduce the paper and are
 * bit-deterministic), this binary measures *host* performance of the
 * discrete-event engine and reports:
 *
 *  - events/sec: raw EventQueue throughput on a self-rescheduling
 *    timer mesh (the pure schedule/fire cycle, no array model);
 *  - allocations/event: heap allocations per fired event on that
 *    steady-state path, counted by the interposed global allocator
 *    below (the engine rewrite's budget is <= 1);
 *  - requests/sec: end-to-end logical accesses per host second for a
 *    fixed-sample closed-loop run (allocations/access alongside);
 *  - mapping ns/op: Layout::map() latency per family, exercising the
 *    precomputed mapping tables.
 *
 * Results flow through the PR-1 harness into BENCH_engine.json so the
 * perf trajectory is tracked run over run. Host timing is inherently
 * noisy: rows carry real wall-derived numbers and are NOT expected to
 * be byte-identical between runs (every other BENCH_*.json is).
 * --check enforces generous CI floors and exits nonzero on a major
 * regression.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "bench_util.hh"
#include "sim/event_queue.hh"
#include "util/rng.hh"

// ---------------------------------------------------------------------
// Interposed counting allocator: every global new/delete in this
// binary bumps one relaxed atomic. Only counts are recorded --
// allocation itself is forwarded to malloc/free -- so the measured
// engine runs at full speed.
// ---------------------------------------------------------------------

namespace {

std::atomic<uint64_t> g_allocations{0};

uint64_t
allocationCount()
{
    return g_allocations.load(std::memory_order_relaxed);
}

void *
countedAlloc(size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

} // namespace

void *
operator new(size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](size_t size)
{
    return countedAlloc(size);
}

void *
operator new(size_t size, std::align_val_t align)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::aligned_alloc(static_cast<size_t>(align),
                                     size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace pddl {
namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** One self-rescheduling timer of the event-throughput mesh. */
struct Timer
{
    EventQueue *queue;
    double delta_ms;
    uint64_t fires = 0;
    double lag_ms = 0.0;

    void
    fire()
    {
        // The closure carries a deadline + generation payload (24
        // bytes with `this`) because that is what the simulator's
        // real event closures look like -- completion hooks capture a
        // component pointer plus address/deadline/outstanding-count
        // context (see reconstruction.cc, scrubber.cc). The mesh
        // must measure the callback type's storage strategy on that
        // footprint, not on an atypically slim capture.
        const uint64_t generation = fires + 1;
        const double due_ms = queue->now() + delta_ms;
        queue->scheduleAfter(delta_ms, [this, due_ms, generation] {
            lag_ms += queue->now() - due_ms;
            fires = generation;
            fire();
        });
    }
};

/**
 * Raw engine throughput: `timers` callbacks perpetually reschedule
 * themselves at staggered deltas, so the queue holds a steady
 * population and every iteration is one schedule + one heap pop +
 * one dispatch. The grid sweeps `timers` over three decades because
 * pending-set size is what separates queue implementations: at 64
 * pending events any heap is cache-resident and dispatch overhead
 * dominates; at tens of thousands the sift depth and the bytes moved
 * per sift level decide the rate.
 */
SimResult
runEventMesh(int timers, harness::Extras &extras)
{
    const uint64_t warmup = 100000 + static_cast<uint64_t>(timers);
    const uint64_t measured = 2000000;

    EventQueue events;
    std::vector<Timer> mesh;
    mesh.reserve(static_cast<size_t>(timers));
    Rng rng(0xbe5affe);
    for (int t = 0; t < timers; ++t) {
        mesh.push_back(Timer{&events, 0.25 + 0.5 * rng.uniform()});
        mesh.back().fire();
    }

    while (events.fired() < warmup)
        events.runOne();

    const uint64_t allocs_before = allocationCount();
    const auto start = Clock::now();
    while (events.fired() < warmup + measured)
        events.runOne();
    const double wall_s = secondsSince(start);
    const uint64_t allocs =
        allocationCount() - allocs_before;

    extras.emplace_back("events_per_s",
                        static_cast<double>(measured) / wall_s);
    extras.emplace_back("allocs_per_event",
                        static_cast<double>(allocs) /
                            static_cast<double>(measured));
    extras.emplace_back("timers", timers);
    // Keep the per-timer accounting observable.
    double lag_ms = 0.0;
    for (const Timer &timer : mesh)
        lag_ms += timer.lag_ms;
    extras.emplace_back("sink_low_bits",
                        static_cast<double>(
                            static_cast<uint64_t>(lag_ms) & 0xff));

    SimResult result;
    result.samples = static_cast<int64_t>(measured);
    return result;
}

/**
 * End-to-end engine rate: a fixed-sample closed-loop experiment on
 * the paper's array, measured in host time. Fixing min == max
 * samples (and a zero tolerance) pins the simulated work, so wall
 * time measures only the engine.
 */
SimResult
runRequestRate(const Layout &layout, const DeviceModel &model,
               AccessType type, uint64_t seed, harness::Extras &extras)
{
    SimConfig config;
    config.clients = 8;
    config.access_units = 3; // 24 KB: mixes small + multi-unit ops
    config.type = type;
    config.relative_tolerance = 0.0;
    config.min_samples = 6000;
    config.max_samples = 6000;
    config.warmup = 200;
    config.seed = seed;

    const uint64_t allocs_before = allocationCount();
    const auto start = Clock::now();
    SimResult result = runClosedLoop(layout, model, config);
    const double wall_s = secondsSince(start);
    const uint64_t allocs = allocationCount() - allocs_before;

    const double accesses =
        static_cast<double>(result.samples + config.warmup);
    extras.emplace_back("host_requests_per_s", accesses / wall_s);
    extras.emplace_back("allocs_per_access", allocs / accesses);
    return result;
}

/**
 * Layout::map() latency. Virtual addresses are pre-drawn (the RNG is
 * not part of the measurement) and span several periods, so both the
 * table lookup and the period-shift arithmetic are exercised.
 */
SimResult
runMappingRate(const Layout &layout, harness::Extras &extras)
{
    const size_t span = 1 << 16;
    const uint64_t ops = 4000000;

    std::vector<VirtualAddress> addresses;
    addresses.reserve(span);
    Rng rng(0x3a77ab1e);
    const int64_t stripes = 4 * layout.stripesPerPeriod();
    for (size_t i = 0; i < span; ++i) {
        addresses.push_back(
            {static_cast<int64_t>(
                 rng.below(static_cast<uint64_t>(stripes))),
             static_cast<int>(rng.below(
                 static_cast<uint64_t>(layout.stripeWidth())))});
    }

    // Warm the lazy table outside the timed region.
    int64_t sink = 0;
    for (const VirtualAddress &va : addresses) {
        PhysAddr addr = layout.map(va);
        sink += addr.disk + addr.unit;
    }

    const auto start = Clock::now();
    for (uint64_t op = 0; op < ops; ++op) {
        const VirtualAddress &va = addresses[op & (span - 1)];
        PhysAddr addr = layout.map(va);
        sink += addr.disk ^ addr.unit;
    }
    const double wall_s = secondsSince(start);

    extras.emplace_back("map_ns_per_op",
                        wall_s * 1e9 / static_cast<double>(ops));
    // Defeat dead-code elimination of the measured loop.
    extras.emplace_back("sink_low_bits",
                        static_cast<double>(sink & 0xff));

    SimResult result;
    result.samples = static_cast<int64_t>(ops);
    return result;
}

struct CheckLimits
{
    double min_events_per_s = 2e6;
    double max_allocs_per_event = 1.0;
};

/** Enforce the CI floors on the finished grid. @return exit code. */
int
checkFloors(const harness::RunSummary &summary,
            const CheckLimits &limits)
{
    int failures = 0;
    for (const harness::PointResult &point : summary.points) {
        for (const auto &[key, value] : point.extras) {
            if (key == "events_per_s" &&
                value < limits.min_events_per_s) {
                std::fprintf(stderr,
                             "[check] FAIL %s: events/sec %.3g below "
                             "floor %.3g\n",
                             point.point.layout.c_str(), value,
                             limits.min_events_per_s);
                ++failures;
            }
            if (key == "allocs_per_event" &&
                value > limits.max_allocs_per_event) {
                std::fprintf(stderr,
                             "[check] FAIL %s: allocations/event %.3f "
                             "over budget %.3f\n",
                             point.point.layout.c_str(), value,
                             limits.max_allocs_per_event);
                ++failures;
            }
        }
    }
    if (failures == 0)
        std::fprintf(stderr, "[check] all engine floors met\n");
    return failures == 0 ? 0 : 1;
}

} // namespace
} // namespace pddl

int
main(int argc, char **argv)
{
    using namespace pddl;

    bench::BenchCli cli(
        argv[0],
        "Engine microbenchmark: events/sec, requests/sec, mapping "
        "ns/op and allocations/event of the simulation core "
        "(host-time based; rows are not run-to-run deterministic).");
    cli.addBool("check",
                "enforce CI floors (events/sec, allocations/"
                "event) and exit 1 on regression");
    // Timing rows run serially by default; --threads overrides.
    cli.parseOrExit(argc, argv, /*default_threads=*/1);

    const DeviceModel &model = device::hp2247();
    auto layouts = bench::evaluatedLayouts();

    std::vector<harness::Experiment> experiments;

    for (int timers : {64, 4096, 65536}) {
        harness::Experiment experiment;
        experiment.point = {"Engine",
                            "event_queue/" + std::to_string(timers), 0,
                            timers, AccessType::Read,
                            ArrayMode::FaultFree};
        experiment.custom = [timers](uint64_t,
                                     harness::Extras &extras) {
            return runEventMesh(timers, extras);
        };
        experiments.push_back(std::move(experiment));
    }

    const Layout *pddl_layout = nullptr;
    for (const auto &layout : layouts) {
        if (std::string(layout->family()) == "pddl")
            pddl_layout = layout.get();
    }

    for (AccessType type : {AccessType::Read, AccessType::Write}) {
        harness::Experiment experiment;
        std::string label = std::string("closed_loop/") +
                            harness::accessTypeName(type);
        experiment.point = {"Engine", label, 24, 8, type,
                            ArrayMode::FaultFree};
        experiment.custom = [pddl_layout, &model, type](
                                uint64_t seed,
                                harness::Extras &extras) {
            return runRequestRate(*pddl_layout, model, type, seed,
                                  extras);
        };
        experiments.push_back(std::move(experiment));
    }

    for (const auto &layout : layouts) {
        harness::Experiment experiment;
        experiment.point = {"Engine",
                            "map/" + std::string(layout->family()), 0,
                            0, AccessType::Read, ArrayMode::FaultFree};
        const Layout *l = layout.get();
        experiment.custom = [l](uint64_t, harness::Extras &extras) {
            return runMappingRate(*l, extras);
        };
        experiments.push_back(std::move(experiment));
    }

    harness::RunSummary summary = bench::runGrid(
        "Engine",
        "Simulation-core microbenchmark: events/sec, requests/sec, "
        "mapping ns/op, allocations/event (host-time based)",
        experiments);

    std::printf("Engine microbenchmark\n");
    std::printf("%-24s %14s %14s\n", "row", "metric", "value");
    bench::printRule(6);
    for (const harness::PointResult &point : summary.points) {
        for (const auto &[key, value] : point.extras) {
            if (key == "sink_low_bits" || key == "timers")
                continue;
            std::printf("%-24s %14s %14.1f\n",
                        point.point.layout.c_str(), key.c_str(),
                        value);
        }
    }

    if (cli.getBool("check"))
        return checkFloors(summary, CheckLimits{});
    return 0;
}
