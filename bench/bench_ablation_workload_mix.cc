/**
 * @file
 * Extension: open-loop mixed workload. The paper's evaluation uses
 * homogeneous closed-loop streams and notes that a more realistic
 * mix would better predict real deployments (section 4); this bench
 * drives all five layouts with a Poisson arrival process and an
 * OLTP-ish profile (70% 8 KB reads, 20% 24 KB writes, 10% 96 KB
 * reads) across offered loads, in fault-free and degraded modes.
 */

#include "bench_util.hh"
#include "workload/open_loop.hh"

int
main()
{
    using namespace pddl;
    auto layouts = bench::evaluatedLayouts();
    DiskModel model = DiskModel::hp2247();
    const bool full = bench::fullFidelity();

    std::printf("Extension: open-loop mixed workload (Poisson "
                "arrivals; 70%% 8KB reads, 20%% 24KB writes,\n"
                "10%% 96KB reads). Cells = mean / p95 response ms.\n");
    for (ArrayMode mode :
         {ArrayMode::FaultFree, ArrayMode::Degraded}) {
        std::printf("\n-- %s --\n",
                    mode == ArrayMode::FaultFree ? "fault free"
                                                 : "single failure");
        std::printf("%-20s", "layout \\ load/s");
        for (double rate : {50.0, 100.0, 200.0, 300.0})
            std::printf("  %8.0f     ", rate);
        std::printf("\n");
        bench::printRule(2 + 4);
        for (const auto &layout : layouts) {
            std::printf("%-20s", layout->name().c_str());
            for (double rate : {50.0, 100.0, 200.0, 300.0}) {
                OpenLoopConfig config;
                config.arrivals_per_s = rate;
                config.mix = {
                    AccessMixEntry{1, AccessType::Read, 0.7},
                    AccessMixEntry{3, AccessType::Write, 0.2},
                    AccessMixEntry{12, AccessType::Read, 0.1},
                };
                config.mode = mode;
                config.failed_disk = 0;
                config.samples = full ? 20000 : 2500;
                config.warmup = full ? 2000 : 250;
                OpenLoopResult r =
                    runOpenLoop(*layout, model, config);
                std::printf("  %6.1f/%-6.1f", r.mean_response_ms,
                            r.p95_response_ms);
            }
            std::printf("\n");
        }
    }
    std::printf("\n");
    return 0;
}
