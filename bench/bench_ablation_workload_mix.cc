/**
 * @file
 * Extension: open-loop mixed workload. The paper's evaluation uses
 * homogeneous closed-loop streams and notes that a more realistic
 * mix would better predict real deployments (section 4); this bench
 * drives all five layouts with a Poisson arrival process and an
 * OLTP-ish profile (70% 8 KB reads, 20% 24 KB writes, 10% 96 KB
 * reads) across offered loads, in fault-free and degraded modes.
 */

#include "bench_util.hh"
#include "workload/open_loop.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Extension: open-loop OLTP-ish workload mix across offered loads");
    auto layouts = bench::evaluatedLayouts();
    const DeviceModel &model = device::hp2247();
    const bool full = bench::fullFidelity();

    const char *figure = "Ablation workload mix";
    const char *caption =
        "open-loop mixed workload (Poisson arrivals; 70% 8KB reads, "
        "20% 24KB writes, 10% 96KB reads)";
    const std::vector<ArrayMode> modes = {ArrayMode::FaultFree,
                                          ArrayMode::Degraded};
    const std::vector<double> rates = {50.0, 100.0, 200.0, 300.0};

    std::vector<harness::Experiment> experiments;
    for (ArrayMode mode : modes) {
        for (const auto &layout : layouts) {
            for (double rate : rates) {
                harness::Experiment experiment;
                // The offered load goes into the series label so the
                // seed hash distinguishes sweep points.
                experiment.point = {
                    figure,
                    layout->name() + "@" +
                        std::to_string(static_cast<int>(rate)) + "/s",
                    0, 0, AccessType::Read, mode};
                const Layout *l = layout.get();
                experiment.custom =
                    [l, &model, mode, rate, full](
                        uint64_t seed, harness::Extras &extras) {
                        OpenLoopSimConfig config;
                        config.workload.arrivals_per_s = rate;
                        config.workload.mix = {
                            AccessMixEntry{1, AccessType::Read, 0.7},
                            AccessMixEntry{3, AccessType::Write, 0.2},
                            AccessMixEntry{12, AccessType::Read, 0.1},
                        };
                        config.mode = mode;
                        config.failed_disk = 0;
                        config.workload.samples = full ? 20000 : 2500;
                        config.workload.warmup = full ? 2000 : 250;
                        config.workload.seed = seed;
                        OpenLoopResult r =
                            runOpenLoop(*l, model, config);
                        extras.emplace_back("p95_response_ms",
                                            r.p95_response_ms);
                        extras.emplace_back(
                            "max_outstanding",
                            static_cast<double>(r.max_outstanding));
                        SimResult result;
                        result.mean_response_ms = r.mean_response_ms;
                        result.throughput_per_s = r.completed_per_s;
                        result.samples = r.samples;
                        return result;
                    };
                experiments.push_back(std::move(experiment));
            }
        }
    }
    harness::RunSummary summary =
        bench::runGrid(figure, caption, experiments);

    std::printf("Extension: open-loop mixed workload (Poisson "
                "arrivals; 70%% 8KB reads, 20%% 24KB writes,\n"
                "10%% 96KB reads). Cells = mean / p95 response ms.\n");
    size_t index = 0;
    for (ArrayMode mode : modes) {
        std::printf("\n-- %s --\n",
                    mode == ArrayMode::FaultFree ? "fault free"
                                                 : "single failure");
        std::printf("%-20s", "layout \\ load/s");
        for (double rate : rates)
            std::printf("  %8.0f     ", rate);
        std::printf("\n");
        bench::printRule(2 + 4);
        for (const auto &layout : layouts) {
            std::printf("%-20s", layout->name().c_str());
            for (size_t r = 0; r < rates.size(); ++r) {
                const harness::PointResult &point =
                    summary.points[index++];
                std::printf("  %6.1f/%-6.1f",
                            point.result.mean_response_ms,
                            point.extras[0].second);
            }
            std::printf("\n");
        }
    }
    std::printf("\n");
    return 0;
}
