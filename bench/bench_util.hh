/**
 * @file
 * Shared helpers for the reproduction benchmarks: the paper's
 * evaluated array (Table 2), layout construction, table formatting,
 * and the parallel experiment harness plumbing.
 *
 * Each bench binary regenerates one table or figure of the paper.
 * By default the simulations use a relaxed stopping rule so the whole
 * suite finishes in minutes; set PDDL_BENCH_FULL=1 for the paper's
 * 2%-at-95%-confidence rule.
 *
 * Grid execution is parallel: every (size, layout, clients) point is
 * an independent simulation, dispatched onto the work-stealing
 * runner of src/harness. PDDL_BENCH_THREADS (or --threads) picks the
 * worker count; results are bit-identical for every thread count
 * because each point's RNG seed is derived from its identity, never
 * from scheduling. --json <dir> additionally emits one machine-
 * readable BENCH_<figure>.json per figure.
 */

#ifndef PDDL_BENCH_BENCH_UTIL_HH
#define PDDL_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/layout_spec.hh"
#include "core/pddl_layout.hh"
#include "core/scenario_spec.hh"
#include "disk/device_model.hh"
#include "harness/arg_parser.hh"
#include "harness/runner.hh"
#include "harness/thread_pool.hh"
#include "layout/datum.hh"
#include "layout/parity_decluster.hh"
#include "layout/prime.hh"
#include "layout/raid5.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "workload/closed_loop.hh"

namespace pddl {
namespace bench {

/** The paper's client counts ("Concurrency" row of Table 2). */
inline const std::vector<int> kClientCounts = {1, 2, 4, 8, 10, 15, 20, 25};

/** Access sizes in KB from Table 2 (8 KB stripe units). */
inline const std::vector<int> kAccessSizesKb = {8,   24,  48,  72,  96,
                                                120, 144, 168, 192, 216,
                                                240, 288, 336};

/** KB -> stripe units (8 KB units). */
inline int
unitsForKb(int kb)
{
    return kb / 8;
}

/** True when the paper-fidelity stopping rule is requested. */
inline bool
fullFidelity()
{
    const char *env = std::getenv("PDDL_BENCH_FULL");
    return env != nullptr && std::strcmp(env, "0") != 0;
}

/** Simulation defaults: fast but shape-preserving, or Table 2 exact. */
inline SimConfig
defaultSimConfig()
{
    SimConfig config;
    if (fullFidelity()) {
        config.relative_tolerance = 0.02;
        config.min_samples = 1000;
        config.max_samples = 200000;
        config.warmup = 500;
    } else {
        config.relative_tolerance = 0.06;
        config.min_samples = 250;
        config.max_samples = 2500;
        config.warmup = 120;
    }
    return config;
}

/** Print a row separator sized to `width` columns of 10 chars. */
inline void
printRule(int width)
{
    for (int i = 0; i < width; ++i)
        std::fputs("----------", stdout);
    std::fputs("\n", stdout);
}

/** Command-line options shared by every bench binary. */
struct BenchOptions
{
    /** Directory for BENCH_<figure>.json files; empty disables. */
    std::string json_dir;
    /** Worker override; 0 = PDDL_BENCH_THREADS / hardware. */
    int threads = 0;
    /** Merged metrics JSON file; empty disables metrics. */
    std::string metrics_path;
    /**
     * Intra-scenario worker threads (the parallel engine's lanes,
     * distinct from the grid-point pool above); 0 defers to
     * PDDL_SIM_THREADS / 1. Output is identical at every value.
     */
    int sim_threads = 0;
    /** Chrome trace JSON file; empty disables tracing. */
    std::string trace_path;
    /** The tracer observes only the first figure's first point. */
    bool trace_attached = false;
    /** --device spec; empty selects hp2247 (the paper's drive). */
    std::string device_spec;
    /** --layout spec; empty keeps each bench's evaluated set. */
    std::string layout_spec;
    /**
     * --scenario: a validated ScenarioSpec (path or inline JSON)
     * that scenario-driven benches use as the base configuration in
     * place of their built-in defaults; empty keeps the defaults.
     */
    std::string scenario;
    /**
     * Zero the informational host-wall fields (wall_time_s, wall_ms,
     * threads) in BENCH_<figure>.json so the file is literally
     * bit-identical across --threads values. Benches whose rows are
     * all simulated rates (bench_scaleout) set this; CI then diffs
     * the raw files without a strip step.
     */
    bool deterministic_json = false;
};

inline BenchOptions &
options()
{
    static BenchOptions instance;
    return instance;
}

/**
 * The evaluated layout set on the 13-disk array of Table 2: the five
 * paper layouts, or just the --layout override when one was given.
 */
inline std::vector<std::unique_ptr<Layout>>
evaluatedLayouts()
{
    std::vector<std::unique_ptr<Layout>> layouts;
    if (!options().layout_spec.empty()) {
        layouts.push_back(
            pddl::layouts::makeLayout(options().layout_spec, 13));
        return layouts;
    }
    layouts.push_back(std::make_unique<DatumLayout>(13, 4));
    layouts.push_back(std::make_unique<ParityDeclusterLayout>(
        ParityDeclusterLayout::make(13, 4)));
    layouts.push_back(std::make_unique<Raid5Layout>(13));
    layouts.push_back(
        std::make_unique<PddlLayout>(PddlLayout::make(13, 4)));
    layouts.push_back(std::make_unique<PrimeLayout>(13, 4));
    return layouts;
}

/** The drive every bench simulates: --device, or the paper's drive. */
inline const DeviceModel &
benchDevice()
{
    static std::shared_ptr<const DeviceModel> owned;
    if (!options().device_spec.empty() && owned == nullptr)
        owned = device::makeDevice(options().device_spec);
    return owned != nullptr ? *owned : device::hp2247();
}

/** The shared flight recorder behind --trace. */
inline obs::Tracer &
benchTracer()
{
    static obs::Tracer instance(1 << 16);
    return instance;
}

/** Metrics merged across every figure the binary runs. */
inline obs::MetricsSnapshot &
suiteMetrics()
{
    static obs::MetricsSnapshot instance;
    return instance;
}

/**
 * The shared bench command line: every bench binary gets --json,
 * --threads, --metrics, --trace and --help from here, plus whatever
 * binary-specific flags it registers before parseOrExit(). This is
 * the single registration point for bench-wide flags -- a flag added
 * in the constructor reaches all bench binaries at once -- and the
 * single owner of the exit policy: --help prints usage and exits 0,
 * unknown flags and missing values print a clear error and exit 2.
 */
class BenchCli
{
  public:
    BenchCli(const char *program, const char *description)
        : parser_(program, description)
    {
        parser_.addString("json", "dir",
                          "also write machine-readable "
                          "BENCH_<figure>.json files into <dir>");
        parser_.addInt("threads", "n",
                       "worker threads for the experiment grid "
                       "(default: PDDL_BENCH_THREADS or hardware "
                       "concurrency; results are bit-identical for "
                       "any value)",
                       1);
        parser_.addInt("sim-threads", "n",
                       "worker threads within one scenario (the "
                       "parallel engine's shard lanes; default: "
                       "PDDL_SIM_THREADS or 1; results are "
                       "bit-identical for any value)",
                       1);
        parser_.addString("metrics", "file",
                          "write the merged metrics snapshot as JSON "
                          "and embed per-point metrics in BENCH rows");
        parser_.addString("trace", "file",
                          "record the first grid point as Chrome "
                          "trace_event JSON (load in Perfetto or "
                          "chrome://tracing)");
        parser_.addString(
            "device", "spec",
            "drive model for every simulated disk (default: hp2247, "
            "the paper's drive; see the spec grammar below)", false,
            [](const std::string &value) {
                std::shared_ptr<const DeviceModel> model;
                std::string error;
                if (!device::parseDeviceSpec(value, model, error))
                    return error;
                return std::string();
            });
        parser_.addString(
            "layout", "spec",
            "replace each bench's evaluated layout set with this one "
            "layout (see the spec grammar below)", false,
            [](const std::string &value) {
                layouts::ParsedLayoutSpec spec;
                std::string error;
                if (!layouts::parseLayoutSpec(value, spec, error))
                    return error;
                // The evaluated set lives on the 13-disk Table 2
                // array; a spec that parses but cannot build there
                // (mirror copies not dividing 13, width > 13) must
                // fail at the flag, not mid-bench.
                try {
                    layouts::buildLayout(spec, 13);
                } catch (const std::exception &e) {
                    return std::string(e.what());
                }
                return std::string();
            });
        parser_.addString(
            "scenario", "file|json",
            "base scenario for scenario-driven benches "
            "(bench_traffic, bench_hybrid, bench_autotune): a "
            "ScenarioSpec JSON file, or the JSON inline; validated "
            "at the flag with field-anchored diagnostics", false,
            [](const std::string &value) {
                ScenarioSpec spec;
                std::string error;
                if (!loadScenario(value, spec, error))
                    return error;
                return std::string();
            });
        std::string epilog =
            "environment:\n"
            "  PDDL_BENCH_FULL=1     paper-fidelity stopping rule "
            "(slower)\n"
            "  PDDL_BENCH_THREADS=n  default worker count\n"
            "  PDDL_SIM_THREADS=n    default intra-scenario worker "
            "count\n"
            "\nregistered device specs:\n";
        for (const std::string &name : device::deviceSpecNames())
            epilog += "  " + name + "\n";
        epilog += "\nregistered layout specs:\n";
        for (const std::string &name : layouts::layoutSpecNames())
            epilog += "  " + name + "\n";
        parser_.setEpilog(epilog);
    }

    /** Register binary-specific flags before parseOrExit(). */
    void
    addBool(const std::string &name, const std::string &help)
    {
        parser_.addBool(name, help);
    }

    void
    addInt(const std::string &name, const std::string &value_name,
           const std::string &help, long long min_value)
    {
        parser_.addInt(name, value_name, help, min_value);
    }

    void
    addString(const std::string &name, const std::string &value_name,
              const std::string &help)
    {
        parser_.addString(name, value_name, help);
    }

    /** String flag rejected at parse time when `validator` objects. */
    void
    addString(const std::string &name, const std::string &value_name,
              const std::string &help,
              harness::ArgParser::Validator validator)
    {
        parser_.addString(name, value_name, help, false,
                          std::move(validator));
    }

    /**
     * Parse argv and fill options(). Owns the process-exit contract:
     * --help exits 0 after printing usage, any parse error exits 2.
     * `default_threads` applies when --threads is absent (0 defers to
     * PDDL_BENCH_THREADS / hardware concurrency; host-timing benches
     * pass 1 so rows do not contend).
     */
    void
    parseOrExit(int argc, char **argv, int default_threads = 0)
    {
        if (!parser_.parse(argc, argv)) {
            std::fprintf(stderr, "%s\n%s", parser_.error().c_str(),
                         parser_.usage().c_str());
            std::exit(2);
        }
        if (parser_.helpRequested()) {
            std::fputs(parser_.usage().c_str(), stdout);
            std::exit(0);
        }
        options().json_dir = parser_.getString("json");
        options().threads = static_cast<int>(
            parser_.getInt("threads", default_threads));
        options().sim_threads =
            static_cast<int>(parser_.getInt("sim-threads", 0));
        if (options().sim_threads < 1)
            options().sim_threads = harness::defaultSimThreads();
        options().metrics_path = parser_.getString("metrics");
        options().trace_path = parser_.getString("trace");
        options().device_spec = parser_.getString("device");
        options().layout_spec = parser_.getString("layout");
        options().scenario = parser_.getString("scenario");
    }

    bool has(const std::string &name) const { return parser_.has(name); }

    bool
    getBool(const std::string &name) const
    {
        return parser_.getBool(name);
    }

    long long
    getInt(const std::string &name, long long fallback = 0) const
    {
        return parser_.getInt(name, fallback);
    }

    std::string
    getString(const std::string &name,
              const std::string &fallback = "") const
    {
        return parser_.getString(name, fallback);
    }

  private:
    harness::ArgParser parser_;
};

/**
 * Parse just the shared bench flags. Call first in every bench
 * main() that needs no extra flags; binaries with their own flags
 * construct a BenchCli instead.
 */
inline void
parseArgs(int argc, char **argv, const char *description = "")
{
    BenchCli cli(argv[0], description);
    cli.parseOrExit(argc, argv);
}

/**
 * Whole-binary aggregates, merged across every figure the binary
 * runs (fig10-13 style binaries run several) and reported once at
 * exit.
 */
struct SuiteTotals
{
    Tally counts;
    Welford point_wall_ms;

    ~SuiteTotals()
    {
        if (counts.empty())
            return;
        std::fprintf(stderr,
                     "[suite] %lld grid points, %lld samples, mean "
                     "point wall %.1f ms (max %.1f)\n",
                     static_cast<long long>(counts.get("points")),
                     static_cast<long long>(counts.get("samples")),
                     point_wall_ms.mean(), point_wall_ms.max());
    }
};

inline SuiteTotals &
suiteTotals()
{
    static SuiteTotals instance;
    return instance;
}

/**
 * Run one figure's experiment grid on the parallel runner, print the
 * one-line run summary, and emit BENCH_<figure>.json when --json was
 * given.
 */
inline harness::RunSummary
runGrid(const char *figure, const char *caption,
        const std::vector<harness::Experiment> &experiments)
{
    harness::ExperimentRunner runner(options().threads);
    const bool metrics_on = !options().metrics_path.empty();
    runner.enableMetrics(metrics_on);
    if (!options().trace_path.empty() && !options().trace_attached) {
        // Trace exactly one simulation (the first figure's first
        // point): one run, one coherent timeline.
        runner.setTracer(&benchTracer());
        options().trace_attached = true;
    }
    harness::RunSummary summary = runner.run(experiments);
    suiteTotals().counts.merge(summary.totals);
    suiteTotals().point_wall_ms.merge(summary.point_wall_ms);
    if (!options().json_dir.empty()) {
        std::filesystem::create_directories(options().json_dir);
        harness::RunSummary to_write = summary;
        if (options().deterministic_json) {
            to_write.wall_s = 0.0;
            to_write.threads = 0;
            for (harness::PointResult &point : to_write.points)
                point.wall_ms = 0.0;
        }
        std::string path = harness::writeFigureJson(
            options().json_dir, figure, caption, to_write);
        std::fprintf(stderr, "[%s] wrote %s\n", figure, path.c_str());
    }
    if (metrics_on) {
        // Merge in submission order and rewrite cumulatively: the
        // file is complete whenever the binary stops, and identical
        // for every thread count.
        for (const harness::PointResult &point : summary.points)
            suiteMetrics().merge(point.metrics);
        Json doc = Json::object();
        doc.set("schema", "pddl-metrics-v1")
            .set("metrics", suiteMetrics().toJson());
        std::ofstream out(options().metrics_path, std::ios::trunc);
        if (out) {
            out << doc.dump();
            std::fprintf(stderr, "[%s] wrote %s\n", figure,
                         options().metrics_path.c_str());
        } else {
            std::fprintf(stderr, "[%s] cannot write %s\n", figure,
                         options().metrics_path.c_str());
        }
    }
    if (!options().trace_path.empty()) {
        if (benchTracer().writeChromeJson(options().trace_path)) {
            std::fprintf(stderr, "[%s] wrote %s\n", figure,
                         options().trace_path.c_str());
        } else {
            std::fprintf(stderr, "[%s] cannot write %s\n", figure,
                         options().trace_path.c_str());
        }
    }
    std::fprintf(stderr,
                 "[%s] %zu grid points on %d thread(s) in %.2f s\n",
                 figure, summary.points.size(), summary.threads,
                 summary.wall_s);
    return summary;
}

/**
 * Regenerate one response-time figure: for each access size, a panel
 * of mean response time (ms) and achieved throughput (accesses/sec)
 * per layout per client count -- the series the paper plots. All
 * grid points run concurrently before the tables print.
 */
inline void
runResponseTimeFigure(const char *figure, const char *caption,
                      const std::vector<int> &sizes_kb, AccessType type,
                      ArrayMode mode)
{
    auto layouts = evaluatedLayouts();
    const DeviceModel &model = benchDevice();

    auto skip = [&](const Layout &layout) {
        return mode == ArrayMode::PostReconstruction &&
               !layout.hasSparing();
    };

    std::vector<harness::Experiment> experiments;
    for (int kb : sizes_kb) {
        for (const auto &layout : layouts) {
            if (skip(*layout))
                continue;
            for (int clients : kClientCounts) {
                harness::Experiment experiment;
                experiment.point = {figure, layout->name(), kb,
                                    clients, type, mode};
                experiment.config = defaultSimConfig();
                experiment.config.clients = clients;
                experiment.config.access_units = unitsForKb(kb);
                experiment.config.type = type;
                experiment.config.mode = mode;
                experiment.config.failed_disk = 0;
                experiment.layout = layout.get();
                experiment.device = &model;
                experiments.push_back(std::move(experiment));
            }
        }
    }
    harness::RunSummary summary = runGrid(figure, caption, experiments);

    std::printf("%s: %s\n", figure, caption);
    std::printf("(workload = achieved accesses/sec, cells = mean "
                "response ms)\n");
    size_t index = 0;
    for (int kb : sizes_kb) {
        std::printf("\n-- %d KB %s, %s --\n", kb,
                    type == AccessType::Read ? "reads" : "writes",
                    mode == ArrayMode::FaultFree ? "fault free"
                    : mode == ArrayMode::Degraded
                        ? "single failure"
                        : "post-reconstruction");
        std::printf("%-20s", "layout \\ clients");
        for (int clients : kClientCounts)
            std::printf("  %6d    ", clients);
        std::printf("\n");
        printRule(2 + static_cast<int>(kClientCounts.size()));
        for (const auto &layout : layouts) {
            if (skip(*layout))
                continue;
            std::printf("%-20s", layout->name().c_str());
            for (size_t c = 0; c < kClientCounts.size(); ++c) {
                const SimResult &r = summary.points[index++].result;
                std::printf("  %6.1f@%-4.0f", r.mean_response_ms,
                            r.throughput_per_s);
            }
            std::printf("\n");
        }
    }
    std::printf("\n");
}

/**
 * Regenerate one seek-count figure: per access size, the per-access
 * averages of non-local seeks, cylinder switches, track switches and
 * no-switch operations (the stacked bars of Figures 4/7/15/16).
 */
inline void
runSeekCountFigure(const char *figure, const char *caption,
                   AccessType type, ArrayMode mode)
{
    auto layouts = evaluatedLayouts();
    const DeviceModel &model = benchDevice();

    std::vector<harness::Experiment> experiments;
    for (const auto &layout : layouts) {
        for (int kb : kAccessSizesKb) {
            harness::Experiment experiment;
            // Section 4: counts are almost workload independent; a
            // moderate concurrency keeps queues busy.
            experiment.point = {figure, layout->name(), kb, 8, type,
                                mode};
            experiment.config = defaultSimConfig();
            experiment.config.clients = 8;
            experiment.config.access_units = unitsForKb(kb);
            experiment.config.type = type;
            experiment.config.mode = mode;
            experiment.config.failed_disk = 0;
            experiment.layout = layout.get();
            experiment.device = &model;
            experiments.push_back(std::move(experiment));
        }
    }
    harness::RunSummary summary = runGrid(figure, caption, experiments);

    std::printf("%s: %s\n", figure, caption);
    std::printf("(per logical access: non-local / cylinder switch / "
                "track switch / no-switch)\n");
    size_t index = 0;
    for (const auto &layout : layouts) {
        std::printf("\n-- %s --\n", layout->name().c_str());
        std::printf("%8s  %9s  %9s  %9s  %9s  %9s\n", "size KB",
                    "non-local", "cyl-sw", "trk-sw", "no-sw", "total");
        for (int kb : kAccessSizesKb) {
            const SimResult &r = summary.points[index++].result;
            double total = r.non_local_seeks + r.cylinder_switches +
                           r.track_switches + r.no_switches;
            std::printf("%8d  %9.1f  %9.1f  %9.1f  %9.1f  %9.1f\n", kb,
                        r.non_local_seeks, r.cylinder_switches,
                        r.track_switches, r.no_switches, total);
        }
    }
    std::printf("\n");
}

} // namespace bench
} // namespace pddl

#endif // PDDL_BENCH_BENCH_UTIL_HH
