/**
 * @file
 * Shared helpers for the reproduction benchmarks: the paper's
 * evaluated array (Table 2), layout construction, and table
 * formatting.
 *
 * Each bench binary regenerates one table or figure of the paper.
 * By default the simulations use a relaxed stopping rule so the whole
 * suite finishes in minutes; set PDDL_BENCH_FULL=1 for the paper's
 * 2%-at-95%-confidence rule.
 */

#ifndef PDDL_BENCH_BENCH_UTIL_HH
#define PDDL_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/pddl_layout.hh"
#include "layout/datum.hh"
#include "layout/parity_decluster.hh"
#include "layout/prime.hh"
#include "layout/raid5.hh"
#include "workload/closed_loop.hh"

namespace pddl {
namespace bench {

/** The paper's client counts ("Concurrency" row of Table 2). */
inline const std::vector<int> kClientCounts = {1, 2, 4, 8, 10, 15, 20, 25};

/** Access sizes in KB from Table 2 (8 KB stripe units). */
inline const std::vector<int> kAccessSizesKb = {8,   24,  48,  72,  96,
                                                120, 144, 168, 192, 216,
                                                240, 288, 336};

/** KB -> stripe units (8 KB units). */
inline int
unitsForKb(int kb)
{
    return kb / 8;
}

/** True when the paper-fidelity stopping rule is requested. */
inline bool
fullFidelity()
{
    const char *env = std::getenv("PDDL_BENCH_FULL");
    return env != nullptr && std::strcmp(env, "0") != 0;
}

/** Simulation defaults: fast but shape-preserving, or Table 2 exact. */
inline SimConfig
defaultSimConfig()
{
    SimConfig config;
    if (fullFidelity()) {
        config.relative_tolerance = 0.02;
        config.min_samples = 1000;
        config.max_samples = 200000;
        config.warmup = 500;
    } else {
        config.relative_tolerance = 0.06;
        config.min_samples = 250;
        config.max_samples = 2500;
        config.warmup = 120;
    }
    return config;
}

/** The five evaluated layouts on the 13-disk array of Table 2. */
inline std::vector<std::unique_ptr<Layout>>
evaluatedLayouts()
{
    std::vector<std::unique_ptr<Layout>> layouts;
    layouts.push_back(std::make_unique<DatumLayout>(13, 4));
    layouts.push_back(std::make_unique<ParityDeclusterLayout>(
        ParityDeclusterLayout::make(13, 4)));
    layouts.push_back(std::make_unique<Raid5Layout>(13));
    layouts.push_back(
        std::make_unique<PddlLayout>(PddlLayout::make(13, 4)));
    layouts.push_back(std::make_unique<PrimeLayout>(13, 4));
    return layouts;
}

/** Print a row separator sized to `width` columns of 10 chars. */
inline void
printRule(int width)
{
    for (int i = 0; i < width; ++i)
        std::fputs("----------", stdout);
    std::fputs("\n", stdout);
}

/**
 * Regenerate one response-time figure: for each access size, a panel
 * of mean response time (ms) and achieved throughput (accesses/sec)
 * per layout per client count -- the series the paper plots.
 */
inline void
runResponseTimeFigure(const char *figure, const char *caption,
                      const std::vector<int> &sizes_kb, AccessType type,
                      ArrayMode mode)
{
    auto layouts = evaluatedLayouts();
    DiskModel model = DiskModel::hp2247();
    std::printf("%s: %s\n", figure, caption);
    std::printf("(workload = achieved accesses/sec, cells = mean "
                "response ms)\n");
    for (int kb : sizes_kb) {
        std::printf("\n-- %d KB %s, %s --\n", kb,
                    type == AccessType::Read ? "reads" : "writes",
                    mode == ArrayMode::FaultFree ? "fault free"
                    : mode == ArrayMode::Degraded
                        ? "single failure"
                        : "post-reconstruction");
        std::printf("%-20s", "layout \\ clients");
        for (int clients : kClientCounts)
            std::printf("  %6d    ", clients);
        std::printf("\n");
        printRule(2 + static_cast<int>(kClientCounts.size()));
        for (const auto &layout : layouts) {
            if (mode == ArrayMode::PostReconstruction &&
                !layout->hasSparing()) {
                continue;
            }
            std::printf("%-20s", layout->name().c_str());
            for (int clients : kClientCounts) {
                SimConfig config = defaultSimConfig();
                config.clients = clients;
                config.access_units = unitsForKb(kb);
                config.type = type;
                config.mode = mode;
                config.failed_disk = 0;
                SimResult r = runClosedLoop(*layout, model, config);
                std::printf("  %6.1f@%-4.0f", r.mean_response_ms,
                            r.throughput_per_s);
            }
            std::printf("\n");
        }
    }
    std::printf("\n");
}

/**
 * Regenerate one seek-count figure: per access size, the per-access
 * averages of non-local seeks, cylinder switches, track switches and
 * no-switch operations (the stacked bars of Figures 4/7/15/16).
 */
inline void
runSeekCountFigure(const char *figure, const char *caption,
                   AccessType type, ArrayMode mode)
{
    auto layouts = evaluatedLayouts();
    DiskModel model = DiskModel::hp2247();
    std::printf("%s: %s\n", figure, caption);
    std::printf("(per logical access: non-local / cylinder switch / "
                "track switch / no-switch)\n");
    for (const auto &layout : layouts) {
        std::printf("\n-- %s --\n", layout->name().c_str());
        std::printf("%8s  %9s  %9s  %9s  %9s  %9s\n", "size KB",
                    "non-local", "cyl-sw", "trk-sw", "no-sw", "total");
        for (int kb : kAccessSizesKb) {
            SimConfig config = defaultSimConfig();
            // Section 4: counts are almost workload independent; a
            // moderate concurrency keeps queues busy.
            config.clients = 8;
            config.access_units = unitsForKb(kb);
            config.type = type;
            config.mode = mode;
            config.failed_disk = 0;
            SimResult r = runClosedLoop(*layout, model, config);
            double total = r.non_local_seeks + r.cylinder_switches +
                           r.track_switches + r.no_switches;
            std::printf("%8d  %9.1f  %9.1f  %9.1f  %9.1f  %9.1f\n", kb,
                        r.non_local_seeks, r.cylinder_switches,
                        r.track_switches, r.no_switches, total);
        }
    }
    std::printf("\n");
}

} // namespace bench
} // namespace pddl

#endif // PDDL_BENCH_BENCH_UTIL_HH
