/**
 * @file
 * Production-traffic benchmark: tail latency under skewed and bursty
 * load, with and without the write-back cache tier, over a 2-shard
 * PDDL volume (healthy / degraded / rebuilding).
 *
 * Two panels:
 *
 *  - traffic: offset skew {uniform, zipf, hot-spot} x arrival process
 *    {poisson, diurnal, mmpp} against the raw volume -- how much of
 *    the tail is burstiness, how much is skew;
 *  - slo: the write-heavy SLO sweep -- skew {zipf, hot-spot} x
 *    {no cache, write-back cache} x {healthy, degraded, rebuilding}.
 *
 * Every row reports p50/p95/p99/p99.9 from the client.latency_ms
 * histogram as first-class JSON columns, plus the cache counters
 * (hit rate, absorbed writes, destage runs, stalls). Rows contain
 * only simulated quantities, so BENCH_traffic.json is byte-identical
 * across --threads and --sim-threads; CI diffs the raw files.
 *
 * --skew <spec> narrows the traffic panel to one validated offset
 * spec ("uniform", "zipf:<theta>", "hot:<fraction>,<weight>").
 * --capture <file> records the zipf/poisson row's offered accesses
 * as a replayable text trace; --replay <file> appends a row that
 * replays such a trace against the healthy uncached volume.
 *
 * --check enforces the CI floors: the hot-spot cached row must hit
 * at least 50% of reads in cache, the cached zipf write-heavy row
 * must beat the uncached row's p99, and the rebuilding rows must
 * complete their rebuild without data loss.
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "cache/cache_tier.hh"
#include "fault/fault_scheduler.hh"
#include "sim/parallel_engine.hh"
#include "traffic/arrival.hh"
#include "traffic/offset_dist.hh"
#include "traffic/trace.hh"
#include "volume/volume_manager.hh"
#include "workload/open_loop.hh"

namespace pddl {
namespace {

constexpr int kShards = 2;
constexpr double kDispatchMs = 2.0;

/** Write-back tier geometry for every cached row. */
constexpr int64_t kCacheUnits = 4096;

/**
 * The hot-spot spec both panels use. The volume addresses ~2.3M
 * units, so 0.05% is ~1.1K units -- a hot set that fits the cache
 * with room to spare, the regime where a write-back tier earns its
 * keep (a hot set much larger than the cache just streams misses).
 */
constexpr double kHotFraction = 0.0005;
constexpr double kHotWeight = 0.95;

enum class Health
{
    Healthy,
    Degraded,  ///< shard 0 runs in degraded mode throughout
    Rebuilding ///< shard 0 loses a disk at 40 ms and rebuilds
};

const char *
healthName(Health health)
{
    switch (health) {
    case Health::Healthy:
        return "healthy";
    case Health::Degraded:
        return "degraded";
    case Health::Rebuilding:
        return "rebuilding";
    }
    return "healthy";
}

/** One row of either panel. */
struct Scenario
{
    std::string label;
    traffic::OffsetSpec offsets;
    traffic::ArrivalSpec arrival;
    double arrivals_per_s = 150.0;
    int64_t samples = 0;  ///< 0 selects the panel default
    int64_t warmup = 200; ///< arrivals before measurement
    bool write_heavy = false;
    bool cached = false;
    Health health = Health::Healthy;
    /** Replay this trace instead of synthetic traffic (may be empty). */
    std::vector<traffic::TraceRecord> replay;
    /** Capture the offered accesses into this file (may be empty). */
    std::string capture_path;
};

std::vector<AccessMixEntry>
mixFor(const Scenario &scenario)
{
    if (scenario.write_heavy) {
        // The cache panel's SLO mix: small writes dominate, a few
        // multi-unit accesses exercise run coalescing.
        return {{1, AccessType::Write, 0.60},
                {4, AccessType::Write, 0.10},
                {1, AccessType::Read, 0.25},
                {4, AccessType::Read, 0.05}};
    }
    return {{1, AccessType::Read, 0.70},
            {1, AccessType::Write, 0.20},
            {3, AccessType::Read, 0.10}};
}

/**
 * Run one scenario on the parallel engine and report the simulated
 * outcome. Every number pushed into `extras` is a pure function of
 * the simulated history, so rows never depend on host timing.
 */
SimResult
runScenario(const Scenario &scenario, uint64_t seed,
            harness::Extras &extras)
{
    ParallelEngine::Config engine_config;
    engine_config.threads = bench::options().sim_threads;
    engine_config.lookahead = kDispatchMs;
    ParallelEngine engine(kShards, engine_config);

    PddlLayout layout = PddlLayout::make(13, 4);
    const DeviceModel &model = device::hp2247();
    std::vector<ShardSpec> specs(kShards);
    for (ShardSpec &spec : specs) {
        spec.layout = &layout;
        spec.device = &model;
    }
    if (scenario.health == Health::Degraded) {
        specs[0].array.mode = ArrayMode::Degraded;
        specs[0].array.failed_disk = 2;
    }
    VolumeConfig vconfig;
    vconfig.chunk_units = 8;
    vconfig.dispatch_ms = kDispatchMs;
    VolumeManager volume(engine, std::move(specs), vconfig);

    std::unique_ptr<FaultScheduler> faults;
    if (scenario.health == Health::Rebuilding) {
        FaultSchedule schedule;
        schedule.events.push_back(
            {40.0, FaultEvent::Kind::DiskFailure, 2, 0});
        faults = std::make_unique<FaultScheduler>(
            engine.shardQueue(0), std::move(schedule),
            FaultScheduler::Options{});
        faults->bindArray(volume.shard(0));
        faults->start();
    }

    // Client latencies and cache counters land in one per-point
    // registry; everything read out of it below is integer-counted,
    // so the merge is exact for any lane/thread arrangement.
    obs::MetricsRegistry registry;
    obs::Probe probe(&registry, nullptr);

    std::unique_ptr<cache::CacheTier> tier;
    if (scenario.cached) {
        cache::CacheConfig cconfig;
        cconfig.capacity_units = kCacheUnits;
        // Tight watermarks keep the destage pump visibly active at
        // this bench's offered load instead of parking every dirty
        // unit until drain.
        cconfig.high_water = 0.10;
        cconfig.low_water = 0.05;
        cconfig.probe = probe;
        tier = std::make_unique<cache::CacheTier>(engine.hubQueue(),
                                                  volume, cconfig);
    }
    Target &target = tier ? static_cast<Target &>(*tier)
                          : static_cast<Target &>(volume);

    std::unique_ptr<traffic::TraceCapture> capture;
    Target *workload_target = &target;
    if (!scenario.capture_path.empty()) {
        capture = std::make_unique<traffic::TraceCapture>(
            engine.hubQueue(), target);
        workload_target = capture.get();
    }

    SimResult result;
    if (!scenario.replay.empty()) {
        traffic::TraceReplayConfig rconfig;
        rconfig.probe = probe;
        traffic::TraceReplayWorkload replay(scenario.replay, rconfig);
        startOnHub(replay, engine, *workload_target);
        engine.run();
        result.mean_response_ms = replay.latency().mean();
        result.samples = replay.latency().count();
        const double sim_s = engine.now() / 1000.0;
        if (sim_s > 0.0) {
            result.throughput_per_s =
                static_cast<double>(replay.completed()) / sim_s;
        }
        extras.emplace_back("max_outstanding",
                            replay.maxOutstanding());
    } else {
        OpenLoopConfig config;
        config.arrivals_per_s = scenario.arrivals_per_s;
        config.mix = mixFor(scenario);
        config.samples = scenario.samples != 0
                             ? scenario.samples
                             : (bench::fullFidelity() ? 8000 : 2000);
        config.warmup = scenario.warmup;
        config.seed = seed;
        config.offsets = scenario.offsets;
        config.arrival = scenario.arrival;
        config.probe = probe;

        OpenLoopClient client(config);
        startOnHub(client, engine, *workload_target);
        engine.run();

        OpenLoopResult open = client.result();
        result.mean_response_ms = open.mean_response_ms;
        result.throughput_per_s = open.completed_per_s;
        result.samples = open.samples;
        extras.emplace_back("max_outstanding", open.max_outstanding);
    }

    obs::MetricsSnapshot snapshot = registry.snapshot();
    const obs::HistogramData *latency =
        snapshot.histogram("client.latency_ms");
    extras.emplace_back("p50_ms",
                        latency ? latency->quantile(0.50) : 0.0);
    extras.emplace_back("p95_ms",
                        latency ? latency->quantile(0.95) : 0.0);
    extras.emplace_back("p99_ms",
                        latency ? latency->quantile(0.99) : 0.0);
    extras.emplace_back("p999_ms",
                        latency ? latency->quantile(0.999) : 0.0);
    extras.emplace_back("backend_accesses",
                        static_cast<double>(
                            volume.volumeAccessesIssued()));
    if (tier) {
        const cache::CacheStats &stats = tier->stats();
        extras.emplace_back("hit_rate", tier->hitRate());
        extras.emplace_back("writes_absorbed",
                            static_cast<double>(stats.writes_absorbed));
        extras.emplace_back("write_stalls",
                            static_cast<double>(stats.write_stalls));
        extras.emplace_back("destage_runs",
                            static_cast<double>(stats.destage_runs));
        extras.emplace_back("destage_units",
                            static_cast<double>(stats.destage_units));
        extras.emplace_back("dirty_end",
                            static_cast<double>(tier->dirtyUnits()));
        extras.emplace_back("stalled_end",
                            static_cast<double>(tier->stalledWrites()));
    }
    if (faults) {
        const FaultStats &stats = faults->stats();
        extras.emplace_back("rebuilds_completed",
                            stats.rebuilds_completed);
        extras.emplace_back("data_loss", stats.data_loss ? 1.0 : 0.0);
    }
    if (capture) {
        std::ofstream out(scenario.capture_path, std::ios::trunc);
        if (out) {
            traffic::writeTrace(out, capture->records());
            std::fprintf(stderr, "[Traffic] captured %zu accesses "
                                 "to %s\n",
                         capture->records().size(),
                         scenario.capture_path.c_str());
        } else {
            std::fprintf(stderr, "[Traffic] cannot write %s\n",
                         scenario.capture_path.c_str());
        }
    }
    return result;
}

double
extra(const harness::PointResult &point, const char *key)
{
    for (const auto &[name, value] : point.extras) {
        if (name == key)
            return value;
    }
    return 0.0;
}

const harness::PointResult *
findRow(const harness::RunSummary &summary, const std::string &label)
{
    for (const harness::PointResult &point : summary.points) {
        if (point.point.layout == label)
            return &point;
    }
    return nullptr;
}

/** Enforce the traffic/cache acceptance floors. @return exit code. */
int
checkFloors(const harness::RunSummary &summary)
{
    int failures = 0;

    const harness::PointResult *hot =
        findRow(summary, "slo/hot:0.0005,0.95/wb/healthy");
    if (hot == nullptr || extra(*hot, "hit_rate") < 0.5) {
        std::fprintf(stderr,
                     "[check] FAIL hot-spot cache: hit rate %.3f "
                     "below the 0.5 floor\n",
                     hot ? extra(*hot, "hit_rate") : 0.0);
        ++failures;
    } else {
        std::fprintf(stderr, "[check] hot-spot cache hit rate %.3f\n",
                     extra(*hot, "hit_rate"));
    }

    const harness::PointResult *cached =
        findRow(summary, "slo/zipf:0.99/wb/healthy");
    const harness::PointResult *raw =
        findRow(summary, "slo/zipf:0.99/nocache/healthy");
    if (cached == nullptr || raw == nullptr ||
        extra(*cached, "p99_ms") >= extra(*raw, "p99_ms")) {
        std::fprintf(stderr,
                     "[check] FAIL write-back p99: cached %.2f ms "
                     "does not beat uncached %.2f ms\n",
                     cached ? extra(*cached, "p99_ms") : 0.0,
                     raw ? extra(*raw, "p99_ms") : 0.0);
        ++failures;
    } else {
        std::fprintf(stderr,
                     "[check] write-back p99 %.2f ms vs uncached "
                     "%.2f ms\n",
                     extra(*cached, "p99_ms"), extra(*raw, "p99_ms"));
    }

    for (const harness::PointResult &point : summary.points) {
        if (point.point.layout.find("/rebuilding") ==
            std::string::npos)
            continue;
        if (extra(point, "data_loss") != 0.0 ||
            extra(point, "rebuilds_completed") < 1.0) {
            std::fprintf(stderr,
                         "[check] FAIL %s: rebuild incomplete or "
                         "data lost\n",
                         point.point.layout.c_str());
            ++failures;
        }
    }

    // Stalled writes must always drain: a stall that outlives the
    // run would be a wedged cache, not a latency effect.
    for (const harness::PointResult &point : summary.points) {
        if (extra(point, "stalled_end") != 0.0) {
            std::fprintf(stderr,
                         "[check] FAIL %s: %d writes still stalled "
                         "at drain\n",
                         point.point.layout.c_str(),
                         static_cast<int>(extra(point, "stalled_end")));
            ++failures;
        }
    }

    if (failures == 0)
        std::fprintf(stderr, "[check] all traffic floors met\n");
    return failures == 0 ? 0 : 1;
}

} // namespace
} // namespace pddl

int
main(int argc, char **argv)
{
    using namespace pddl;

    bench::BenchCli cli(
        argv[0],
        "Production traffic benchmark: tail latency (p50..p99.9) "
        "under skewed/bursty load over a 2-shard PDDL volume, with "
        "and without the write-back cache tier (rows are "
        "bit-identical for every --threads and --sim-threads "
        "value).");
    cli.addString("skew", "spec",
                  "narrow the traffic panel to one offset spec: "
                  "uniform, zipf:<theta> or hot:<fraction>,<weight>",
                  [](const std::string &value) {
                      traffic::OffsetSpec spec;
                      std::string error;
                      return traffic::parseOffsetSpec(value, spec,
                                                      error)
                                 ? std::string()
                                 : error;
                  });
    cli.addString("replay", "file",
                  "append a row replaying this trace file against "
                  "the healthy uncached volume",
                  [](const std::string &value) {
                      std::ifstream in(value);
                      return in ? std::string()
                                : std::string("cannot read file");
                  });
    cli.addString("capture", "file",
                  "record the zipf/poisson traffic row's accesses "
                  "as a replayable trace");
    cli.addBool("check",
                "enforce CI floors (hot-spot cache hit rate >= 0.5, "
                "cached zipf p99 beats uncached, rebuilding rows "
                "loss-free, stalls drained) and exit 1 on "
                "regression");
    cli.parseOrExit(argc, argv);
    bench::options().deterministic_json = true;

    std::vector<traffic::OffsetSpec> panel_skews;
    if (cli.has("skew")) {
        traffic::OffsetSpec spec;
        std::string error;
        traffic::parseOffsetSpec(cli.getString("skew"), spec, error);
        panel_skews.push_back(spec);
    } else {
        traffic::OffsetSpec zipf;
        zipf.kind = traffic::OffsetSpec::Kind::Zipf;
        zipf.theta = 0.99;
        traffic::OffsetSpec hot;
        hot.kind = traffic::OffsetSpec::Kind::HotSpot;
        hot.hot_fraction = kHotFraction;
        hot.hot_weight = kHotWeight;
        panel_skews = {traffic::OffsetSpec{}, zipf, hot};
    }

    std::vector<Scenario> scenarios;

    // Panel 1 -- traffic: skew x arrival against the raw volume.
    for (const traffic::OffsetSpec &skew : panel_skews) {
        for (const char *arrival_name :
             {"poisson", "diurnal", "mmpp"}) {
            Scenario scenario;
            scenario.offsets = skew;
            if (std::string(arrival_name) == "diurnal") {
                scenario.arrival.kind =
                    traffic::ArrivalSpec::Kind::Diurnal;
                // Quiet / busy / peak / busy, 500 ms phases.
                scenario.arrival.phase_mult = {0.25, 1.0, 2.5, 1.0};
                scenario.arrival.phase_ms = 500.0;
            } else if (std::string(arrival_name) == "mmpp") {
                scenario.arrival.kind =
                    traffic::ArrivalSpec::Kind::Mmpp;
            }
            scenario.label = std::string("traffic/") +
                             traffic::offsetSpecName(skew) + "+" +
                             arrival_name;
            scenarios.push_back(std::move(scenario));
        }
    }

    // Panel 2 -- slo: the write-heavy cache sweep.
    {
        traffic::OffsetSpec zipf;
        zipf.kind = traffic::OffsetSpec::Kind::Zipf;
        zipf.theta = 0.99;
        traffic::OffsetSpec hot;
        hot.kind = traffic::OffsetSpec::Kind::HotSpot;
        hot.hot_fraction = kHotFraction;
        hot.hot_weight = kHotWeight;
        for (const traffic::OffsetSpec &skew : {zipf, hot}) {
            for (bool cached : {false, true}) {
                for (Health health :
                     {Health::Healthy, Health::Degraded,
                      Health::Rebuilding}) {
                    Scenario scenario;
                    scenario.offsets = skew;
                    scenario.arrivals_per_s = 100.0;
                    // A long warm-up lets the tier reach steady
                    // state (hot set resident, pump cycling) before
                    // the measured window opens.
                    scenario.samples =
                        bench::fullFidelity() ? 12000 : 4000;
                    scenario.warmup =
                        bench::fullFidelity() ? 3000 : 1500;
                    scenario.write_heavy = true;
                    scenario.cached = cached;
                    scenario.health = health;
                    scenario.label =
                        std::string("slo/") +
                        traffic::offsetSpecName(skew) + "/" +
                        (cached ? "wb" : "nocache") + "/" +
                        healthName(health);
                    scenarios.push_back(std::move(scenario));
                }
            }
        }
    }

    if (cli.has("capture")) {
        for (Scenario &scenario : scenarios) {
            if (scenario.label == "traffic/zipf:0.99+poisson") {
                scenario.capture_path = cli.getString("capture");
                break;
            }
        }
    }
    if (cli.has("replay")) {
        Scenario scenario;
        scenario.label = "replay/" + cli.getString("replay");
        scenario.replay = traffic::loadTrace(cli.getString("replay"));
        scenarios.push_back(std::move(scenario));
    }

    std::vector<harness::Experiment> experiments;
    for (const Scenario &scenario : scenarios) {
        harness::Experiment experiment;
        experiment.point = {
            "Traffic", scenario.label, 8,
            static_cast<int>(scenario.arrivals_per_s),
            scenario.write_heavy ? AccessType::Write
                                 : AccessType::Read,
            scenario.health == Health::Healthy
                ? ArrayMode::FaultFree
                : ArrayMode::Degraded};
        experiment.custom = [&scenario](uint64_t seed,
                                        harness::Extras &extras) {
            return runScenario(scenario, seed, extras);
        };
        experiments.push_back(std::move(experiment));
    }

    harness::RunSummary summary = bench::runGrid(
        "Traffic",
        "Tail latency under production traffic: skew x burstiness x "
        "write-back cache x shard health (p50/p95/p99/p99.9 ms)",
        experiments);

    std::printf("Production traffic (2-shard PDDL volume, %d "
                "sim-thread(s))\n",
                bench::options().sim_threads);
    std::printf("%-34s %8s %8s %8s %8s %8s %8s %7s\n", "scenario",
                "req/s", "p50", "p95", "p99", "p99.9", "hit", "stall");
    bench::printRule(10);
    for (const harness::PointResult &point : summary.points) {
        const bool cached =
            point.point.layout.find("/wb") != std::string::npos;
        std::printf("%-34s %8.1f %8.2f %8.2f %8.2f %8.2f",
                    point.point.layout.c_str(),
                    point.result.throughput_per_s,
                    extra(point, "p50_ms"), extra(point, "p95_ms"),
                    extra(point, "p99_ms"), extra(point, "p999_ms"));
        if (cached) {
            std::printf(" %8.3f %7.0f\n", extra(point, "hit_rate"),
                        extra(point, "write_stalls"));
        } else {
            std::printf(" %8s %7s\n", "-", "-");
        }
    }

    if (cli.getBool("check"))
        return checkFloors(summary);
    return 0;
}
