/**
 * @file
 * Production-traffic benchmark: tail latency under skewed and bursty
 * load, with and without the write-back cache tier, over a 2-shard
 * PDDL volume (healthy / degraded / rebuilding).
 *
 * Two panels:
 *
 *  - traffic: offset skew {uniform, zipf, hot-spot} x arrival process
 *    {poisson, diurnal, mmpp} against the raw volume -- how much of
 *    the tail is burstiness, how much is skew;
 *  - slo: the write-heavy SLO sweep -- skew {zipf, hot-spot} x
 *    {no cache, write-back cache} x {healthy, degraded, rebuilding}.
 *
 * Every row is one ScenarioSpec (core/scenario_spec.hh) run through
 * the shared scenario runner (src/tune) -- the same engine that backs
 * bench_hybrid and the autotuner, so a row here is replayable from
 * its serialized spec alone. --scenario <file|json> swaps the base
 * configuration (volume, cache budget, rates) for a validated spec
 * of your own; the panels then vary skew/arrival/health on top of it.
 *
 * Every row reports p50/p95/p99/p99.9 from the client.latency_ms
 * histogram as first-class JSON columns, plus the cache counters
 * (hit rate, absorbed writes, destage runs, stalls). Rows contain
 * only simulated quantities, so BENCH_traffic.json is byte-identical
 * across --threads and --sim-threads; CI diffs the raw files.
 *
 * --skew <spec> narrows the traffic panel to one validated offset
 * spec ("uniform", "zipf:<theta>", "hot:<fraction>,<weight>").
 * --capture <file> records the zipf/poisson row's offered accesses
 * as a replayable text trace; --replay <file> appends a row that
 * replays such a trace against the healthy uncached volume.
 *
 * --check enforces the CI floors: the hot-spot cached row must hit
 * at least 50% of reads in cache, the cached zipf write-heavy row
 * must beat the uncached row's p99, and the rebuilding rows must
 * complete their rebuild without data loss.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "traffic/offset_dist.hh"
#include "traffic/trace.hh"
#include "tune/scenario_runner.hh"

namespace pddl {
namespace {

/**
 * The hot-spot spec both panels use. The volume addresses ~2.3M
 * units, so 0.05% is ~1.1K units -- a hot set that fits the cache
 * with room to spare, the regime where a write-back tier earns its
 * keep (a hot set much larger than the cache just streams misses).
 */
constexpr double kHotFraction = 0.0005;
constexpr double kHotWeight = 0.95;

enum class Health
{
    Healthy,
    Degraded,  ///< shard 0 runs in degraded mode throughout
    Rebuilding ///< shard 0 loses a disk at 40 ms and rebuilds
};

const char *
healthName(Health health)
{
    switch (health) {
    case Health::Healthy:
        return "healthy";
    case Health::Degraded:
        return "degraded";
    case Health::Rebuilding:
        return "rebuilding";
    }
    return "healthy";
}

/** One row of either panel: a label plus the full scenario. */
struct Row
{
    std::string label;
    ScenarioSpec spec;
    /** Replay this trace instead of synthetic traffic (may be empty). */
    std::vector<traffic::TraceRecord> replay;
    /** Capture the offered accesses into this file (may be empty). */
    std::string capture_path;
};

/**
 * The base scenario every row starts from: --scenario when given,
 * else the bench's traditional 2-shard PDDL volume behind the
 * 2 ms fabric.
 */
ScenarioSpec
baseSpec()
{
    ScenarioSpec spec;
    if (!bench::options().scenario.empty()) {
        std::string error;
        // The flag validator already accepted it; reparse for real.
        if (!loadScenario(bench::options().scenario, spec, error)) {
            std::fprintf(stderr, "--scenario: %s\n", error.c_str());
            std::exit(2);
        }
        return spec;
    }
    spec.shards.assign(2, ScenarioShard{});
    spec.chunk_units = 8;
    spec.dispatch_ms = 2.0;
    // The write-back tier's budget: 4096 lines of 8 KB = 32 MB,
    // tight watermarks that keep the destage pump visibly active at
    // this bench's offered load instead of parking every dirty unit
    // until drain.
    spec.cache_kb = 32768;
    spec.cache_high = 0.10;
    spec.cache_low = 0.05;
    return spec;
}

void
applyMix(ScenarioSpec &spec, bool write_heavy)
{
    if (write_heavy) {
        // The cache panel's SLO mix: small writes dominate, a few
        // multi-unit accesses exercise run coalescing.
        spec.mix = {{8, true, 0.60},
                    {32, true, 0.10},
                    {8, false, 0.25},
                    {32, false, 0.05}};
    } else {
        spec.mix = {{8, false, 0.70},
                    {8, true, 0.20},
                    {24, false, 0.10}};
    }
}

void
applyHealth(ScenarioSpec &spec, Health health)
{
    if (health == Health::Degraded) {
        spec.shards[0].failed_disk = 2;
    } else if (health == Health::Rebuilding) {
        spec.faults = {{40.0, 0, 2}};
    }
}

/** Run one row through the shared scenario runner. */
SimResult
runRow(const Row &row, uint64_t seed, harness::Extras &extras)
{
    tune::RunScenarioOptions options;
    options.seed = seed;
    options.sim_threads = bench::options().sim_threads;
    options.capture_path = row.capture_path;
    if (!row.replay.empty())
        options.replay = &row.replay;

    const tune::ScenarioOutcome outcome =
        tune::runScenario(row.spec, options);

    extras.emplace_back("max_outstanding", outcome.max_outstanding);
    extras.emplace_back("p50_ms", outcome.p50_ms);
    extras.emplace_back("p95_ms", outcome.p95_ms);
    extras.emplace_back("p99_ms", outcome.p99_ms);
    extras.emplace_back("p999_ms", outcome.p999_ms);
    extras.emplace_back("backend_accesses",
                        static_cast<double>(outcome.backend_accesses));
    if (row.spec.cache_enabled) {
        extras.emplace_back("hit_rate", outcome.hit_rate);
        extras.emplace_back(
            "writes_absorbed",
            static_cast<double>(outcome.writes_absorbed));
        extras.emplace_back(
            "write_stalls",
            static_cast<double>(outcome.write_stalls));
        extras.emplace_back(
            "destage_runs",
            static_cast<double>(outcome.destage_runs));
        extras.emplace_back(
            "destage_units",
            static_cast<double>(outcome.destage_units));
        extras.emplace_back("dirty_end",
                            static_cast<double>(outcome.dirty_end));
        extras.emplace_back(
            "stalled_end",
            static_cast<double>(outcome.stalled_end));
    }
    if (!row.spec.faults.empty()) {
        extras.emplace_back("rebuilds_completed",
                            outcome.rebuilds_completed);
        extras.emplace_back("data_loss",
                            outcome.data_loss ? 1.0 : 0.0);
    }

    SimResult result;
    result.mean_response_ms = outcome.mean_ms;
    result.throughput_per_s = outcome.throughput_per_s;
    result.samples = outcome.samples;
    return result;
}

double
extra(const harness::PointResult &point, const char *key)
{
    for (const auto &[name, value] : point.extras) {
        if (name == key)
            return value;
    }
    return 0.0;
}

const harness::PointResult *
findRow(const harness::RunSummary &summary, const std::string &label)
{
    for (const harness::PointResult &point : summary.points) {
        if (point.point.layout == label)
            return &point;
    }
    return nullptr;
}

/** Enforce the traffic/cache acceptance floors. @return exit code. */
int
checkFloors(const harness::RunSummary &summary)
{
    int failures = 0;

    const harness::PointResult *hot =
        findRow(summary, "slo/hot:0.0005,0.95/wb/healthy");
    if (hot == nullptr || extra(*hot, "hit_rate") < 0.5) {
        std::fprintf(stderr,
                     "[check] FAIL hot-spot cache: hit rate %.3f "
                     "below the 0.5 floor\n",
                     hot ? extra(*hot, "hit_rate") : 0.0);
        ++failures;
    } else {
        std::fprintf(stderr, "[check] hot-spot cache hit rate %.3f\n",
                     extra(*hot, "hit_rate"));
    }

    const harness::PointResult *cached =
        findRow(summary, "slo/zipf:0.99/wb/healthy");
    const harness::PointResult *raw =
        findRow(summary, "slo/zipf:0.99/nocache/healthy");
    if (cached == nullptr || raw == nullptr ||
        extra(*cached, "p99_ms") >= extra(*raw, "p99_ms")) {
        std::fprintf(stderr,
                     "[check] FAIL write-back p99: cached %.2f ms "
                     "does not beat uncached %.2f ms\n",
                     cached ? extra(*cached, "p99_ms") : 0.0,
                     raw ? extra(*raw, "p99_ms") : 0.0);
        ++failures;
    } else {
        std::fprintf(stderr,
                     "[check] write-back p99 %.2f ms vs uncached "
                     "%.2f ms\n",
                     extra(*cached, "p99_ms"), extra(*raw, "p99_ms"));
    }

    for (const harness::PointResult &point : summary.points) {
        if (point.point.layout.find("/rebuilding") ==
            std::string::npos)
            continue;
        if (extra(point, "data_loss") != 0.0 ||
            extra(point, "rebuilds_completed") < 1.0) {
            std::fprintf(stderr,
                         "[check] FAIL %s: rebuild incomplete or "
                         "data lost\n",
                         point.point.layout.c_str());
            ++failures;
        }
    }

    // Stalled writes must always drain: a stall that outlives the
    // run would be a wedged cache, not a latency effect.
    for (const harness::PointResult &point : summary.points) {
        if (extra(point, "stalled_end") != 0.0) {
            std::fprintf(stderr,
                         "[check] FAIL %s: %d writes still stalled "
                         "at drain\n",
                         point.point.layout.c_str(),
                         static_cast<int>(extra(point, "stalled_end")));
            ++failures;
        }
    }

    if (failures == 0)
        std::fprintf(stderr, "[check] all traffic floors met\n");
    return failures == 0 ? 0 : 1;
}

} // namespace
} // namespace pddl

int
main(int argc, char **argv)
{
    using namespace pddl;

    bench::BenchCli cli(
        argv[0],
        "Production traffic benchmark: tail latency (p50..p99.9) "
        "under skewed/bursty load over a 2-shard PDDL volume, with "
        "and without the write-back cache tier (rows are "
        "bit-identical for every --threads and --sim-threads "
        "value).");
    cli.addString("skew", "spec",
                  "narrow the traffic panel to one offset spec: "
                  "uniform, zipf:<theta> or hot:<fraction>,<weight>",
                  [](const std::string &value) {
                      traffic::OffsetSpec spec;
                      std::string error;
                      return traffic::parseOffsetSpec(value, spec,
                                                      error)
                                 ? std::string()
                                 : error;
                  });
    cli.addString("replay", "file",
                  "append a row replaying this trace file against "
                  "the healthy uncached volume",
                  [](const std::string &value) {
                      std::ifstream in(value);
                      return in ? std::string()
                                : std::string("cannot read file");
                  });
    cli.addString("capture", "file",
                  "record the zipf/poisson traffic row's accesses "
                  "as a replayable trace");
    cli.addBool("check",
                "enforce CI floors (hot-spot cache hit rate >= 0.5, "
                "cached zipf p99 beats uncached, rebuilding rows "
                "loss-free, stalls drained) and exit 1 on "
                "regression");
    cli.parseOrExit(argc, argv);
    bench::options().deterministic_json = true;

    const ScenarioSpec base = baseSpec();

    std::vector<std::string> panel_skews;
    if (cli.has("skew")) {
        panel_skews.push_back(cli.getString("skew"));
    } else {
        char hot[64];
        std::snprintf(hot, sizeof(hot), "hot:%g,%g", kHotFraction,
                      kHotWeight);
        panel_skews = {"uniform", "zipf:0.99", hot};
    }

    std::vector<Row> rows;

    // Panel 1 -- traffic: skew x arrival against the raw volume.
    for (const std::string &skew : panel_skews) {
        for (const char *arrival_name :
             {"poisson", "diurnal", "mmpp"}) {
            Row row;
            row.spec = base;
            row.spec.cache_enabled = false;
            row.spec.offsets = skew;
            if (std::string(arrival_name) == "diurnal") {
                // Quiet / busy / peak / busy, 500 ms phases.
                row.spec.arrival = "diurnal:0.25,1,2.5,1@500";
            } else {
                row.spec.arrival = arrival_name;
            }
            row.spec.arrivals_per_s = 150.0;
            applyMix(row.spec, false);
            row.spec.samples = bench::fullFidelity() ? 8000 : 2000;
            row.spec.warmup = 200;
            std::string error;
            if (!row.spec.normalize(error)) {
                std::fprintf(stderr, "traffic row: %s\n",
                             error.c_str());
                return 2;
            }
            // Label with the canonical offset name so --skew and
            // the default panel produce identical row keys.
            row.label = std::string("traffic/") + row.spec.offsets +
                        "+" + arrival_name;
            rows.push_back(std::move(row));
        }
    }

    // Panel 2 -- slo: the write-heavy cache sweep.
    {
        char hot[64];
        std::snprintf(hot, sizeof(hot), "hot:%g,%g", kHotFraction,
                      kHotWeight);
        for (const std::string &skew :
             {std::string("zipf:0.99"), std::string(hot)}) {
            for (bool cached : {false, true}) {
                for (Health health :
                     {Health::Healthy, Health::Degraded,
                      Health::Rebuilding}) {
                    Row row;
                    row.spec = base;
                    row.spec.offsets = skew;
                    row.spec.arrival = "poisson";
                    row.spec.arrivals_per_s = 100.0;
                    // A long warm-up lets the tier reach steady
                    // state (hot set resident, pump cycling) before
                    // the measured window opens.
                    row.spec.samples =
                        bench::fullFidelity() ? 12000 : 4000;
                    row.spec.warmup =
                        bench::fullFidelity() ? 3000 : 1500;
                    applyMix(row.spec, true);
                    row.spec.cache_enabled = cached;
                    applyHealth(row.spec, health);
                    std::string error;
                    if (!row.spec.normalize(error)) {
                        std::fprintf(stderr, "slo row: %s\n",
                                     error.c_str());
                        return 2;
                    }
                    row.label = std::string("slo/") +
                                row.spec.offsets + "/" +
                                (cached ? "wb" : "nocache") + "/" +
                                healthName(health);
                    rows.push_back(std::move(row));
                }
            }
        }
    }

    if (cli.has("capture")) {
        for (Row &row : rows) {
            if (row.label == "traffic/zipf:0.99+poisson") {
                row.capture_path = cli.getString("capture");
                break;
            }
        }
    }
    if (cli.has("replay")) {
        Row row;
        row.label = "replay/" + cli.getString("replay");
        row.spec = base;
        row.spec.cache_enabled = false;
        std::string error;
        if (!row.spec.normalize(error)) {
            std::fprintf(stderr, "replay row: %s\n", error.c_str());
            return 2;
        }
        row.replay = traffic::loadTrace(cli.getString("replay"));
        rows.push_back(std::move(row));
    }

    std::vector<harness::Experiment> experiments;
    for (const Row &row : rows) {
        harness::Experiment experiment;
        const bool write_heavy =
            !row.spec.mix.empty() && row.spec.mix.front().write;
        experiment.point = {
            "Traffic", row.label, 8,
            static_cast<int>(row.spec.arrivals_per_s),
            write_heavy ? AccessType::Write : AccessType::Read,
            row.spec.shards[0].failed_disk < 0 &&
                    row.spec.faults.empty()
                ? ArrayMode::FaultFree
                : ArrayMode::Degraded};
        experiment.custom = [&row](uint64_t seed,
                                   harness::Extras &extras) {
            return runRow(row, seed, extras);
        };
        experiments.push_back(std::move(experiment));
    }

    harness::RunSummary summary = bench::runGrid(
        "Traffic",
        "Tail latency under production traffic: skew x burstiness x "
        "write-back cache x shard health (p50/p95/p99/p99.9 ms)",
        experiments);

    std::printf("Production traffic (2-shard PDDL volume, %d "
                "sim-thread(s))\n",
                bench::options().sim_threads);
    std::printf("%-34s %8s %8s %8s %8s %8s %8s %7s\n", "scenario",
                "req/s", "p50", "p95", "p99", "p99.9", "hit", "stall");
    bench::printRule(10);
    for (const harness::PointResult &point : summary.points) {
        const bool cached =
            point.point.layout.find("/wb") != std::string::npos;
        std::printf("%-34s %8.1f %8.2f %8.2f %8.2f %8.2f",
                    point.point.layout.c_str(),
                    point.result.throughput_per_s,
                    extra(point, "p50_ms"), extra(point, "p95_ms"),
                    extra(point, "p99_ms"), extra(point, "p999_ms"));
        if (cached) {
            std::printf(" %8.3f %7.0f\n", extra(point, "hit_rate"),
                        extra(point, "write_stalls"));
        } else {
            std::printf(" %8s %7s\n", "-", "-");
        }
    }

    if (cli.getBool("check"))
        return checkFloors(summary);
    return 0;
}
