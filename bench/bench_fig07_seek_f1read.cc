/**
 * @file
 * Figure 7 reproduction: degraded read seek and no-switch counts per
 * logical access, 8..336 KB.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Figure 7: degraded read seek/no-switch counts per access");
    bench::runSeekCountFigure("Figure 7",
                              "Degraded read; seek and no-switch "
                              "counts",
                              AccessType::Read, ArrayMode::Degraded);
    return 0;
}
