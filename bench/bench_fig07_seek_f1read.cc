/**
 * @file
 * Figure 7 reproduction: degraded read seek and no-switch counts per
 * logical access, 8..336 KB.
 */

#include "bench_util.hh"

int
main()
{
    using namespace pddl;
    bench::runSeekCountFigure("Figure 7",
                              "Degraded read; seek and no-switch "
                              "counts",
                              AccessType::Read, ArrayMode::Degraded);
    return 0;
}
