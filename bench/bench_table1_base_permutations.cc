/**
 * @file
 * Table 1 reproduction: the number of base permutations needed for
 * stripe widths 5..10 and 1..10 stripes. Prime disk counts use
 * Bose's construction (always 1); the rest run the hill-climbing /
 * complement-matching search with a bounded budget.
 *
 * Output cells: the group size found, "p" when Bose applies (prime),
 * "'" marks non-prime disk counts solved (the paper's apostrophe),
 * and "?" when the budget was exhausted (the paper's table has "?"
 * entries as well).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.hh"
#include "core/search.hh"
#include "util/modmath.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Table 1: satisfactory base permutation counts per (g, k)");
    const bool full = std::getenv("PDDL_BENCH_FULL") != nullptr;

    std::printf("Table 1: Satisfactory PDDL base permutations\n");
    std::printf("(rows = number of stripes g, columns = stripe width "
                "k, n = g*k + 1)\n\n");
    std::printf("%6s", "g \\ k");
    for (int k = 5; k <= 10; ++k)
        std::printf("%8d", k);
    std::printf("\n");

    // The paper's published entries for comparison ('?' = open).
    const char *published[10] = {
        "1 1 1 1 1 1", "1 1 2 1 1 ?", "1 1 1' 2 2 1", "1 1 1 1' 1 1",
        "1 1 1' 1 3 2", "1 1 3 6 2 1", "1 1 5 ? 4 ?",  "1 2 1 5 1 ?",
        "2 2 5 ? 1 ?", "1 1 ? ? ? 1"};

    for (int g = 1; g <= 10; ++g) {
        std::printf("%6d", g);
        for (int k = 5; k <= 10; ++k) {
            int n = g * k + 1;
            std::string cell;
            if (isPrime(n)) {
                cell = "1p";
            } else {
                SearchOptions options;
                options.max_group_size = full ? 4 : 3;
                // Budget scales down with n: the climb's sweep is
                // O(n^2) moves, and large-n cells dominate runtime.
                options.restarts =
                    std::max(4, (full ? 2400 : 400) / n);
                options.max_steps = full ? 8000 : 2500;
                auto group = findBasePermutations(n, k, options);
                cell = group ? std::to_string(group->size()) + "'"
                             : "?";
            }
            std::printf("%8s", cell.c_str());
        }
        std::printf("   | paper: %s\n", published[g - 1]);
    }
    std::printf("\n'p' = prime (Bose construction), ' = non-prime "
                "solved by search, ? = not found in budget\n");
    return 0;
}
