/**
 * @file
 * Figure 15 reproduction: fault-free write seek and no-switch counts
 * per logical access, 8..336 KB.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv,
                     "Figure 15: fault-free write seek/no-switch counts per access");
    bench::runSeekCountFigure("Figure 15",
                              "Fault free write; seek and no-switch "
                              "counts",
                              AccessType::Write, ArrayMode::FaultFree);
    return 0;
}
