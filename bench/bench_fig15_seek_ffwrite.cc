/**
 * @file
 * Figure 15 reproduction: fault-free write seek and no-switch counts
 * per logical access, 8..336 KB.
 */

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace pddl;
    bench::parseArgs(argc, argv);
    bench::runSeekCountFigure("Figure 15",
                              "Fault free write; seek and no-switch "
                              "counts",
                              AccessType::Write, ArrayMode::FaultFree);
    return 0;
}
